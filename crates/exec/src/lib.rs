//! # seqdl-exec — stratified scheduler and multi-threaded semi-naive executor
//!
//! The engine (`seqdl-engine`) evaluates a program stratum by stratum, running
//! *every* rule of a stratum in *every* fixpoint iteration on one thread.  This
//! crate sits between the planner and the engine's inner join loop and replaces
//! that global fixpoint with a schedule derived from the program's precedence
//! graph (`seqdl_syntax::PrecedenceGraph`):
//!
//! 1. each declared stratum is condensed into strongly connected components and
//!    topologically ordered into levels ([`Schedule`]);
//! 2. non-recursive components are evaluated with a single pass — no fixpoint
//!    bookkeeping at all;
//! 3. recursive components run the engine's watermark-based semi-naive loop
//!    restricted to the component's own rules;
//! 4. independent same-level components — and, inside a recursive fixpoint,
//!    rule variants over disjoint delta shards — fan out over a fixed worker
//!    pool built from `std::thread` and `parking_lot`.
//!
//! Workers only ever *read* the shared instance (behind a `parking_lot::RwLock`)
//! and produce derived facts into private buffers; the driver merges those
//! buffers into the shared indexed relation store between rounds, so the column
//! indexes are never mutated concurrently.  Merging happens in deterministic job
//! order, which makes the executor's output instance independent of the thread
//! count — the property the differential tests pin down.
//!
//! ```
//! use seqdl_core::{rel, Fact, path_of, Instance};
//! use seqdl_exec::Executor;
//! use seqdl_syntax::parse_program;
//!
//! let program = parse_program(
//!     "T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).\nS <- T(a·b).",
//! )
//! .unwrap();
//! let mut input = Instance::new();
//! for (x, y) in [("a", "c"), ("c", "b")] {
//!     input.insert_fact(Fact::new(rel("R"), vec![path_of(&[x, y])])).unwrap();
//! }
//! let out = Executor::new().with_threads(4).run(&program, &input).unwrap();
//! assert!(out.nullary_true(rel("S")));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![warn(clippy::unwrap_used)]

pub mod schedule;

pub use schedule::{Component, Schedule, StratumSchedule};

use parking_lot::{Mutex, RwLock};
use seqdl_core::{Fact, Instance, RelName, Relation};
use seqdl_engine::error::LimitKind;
use seqdl_engine::ram::{self, RuleProc};
use seqdl_engine::{
    fire_proc, fire_rule, plan_rule, prepare_idb_instance, register_plan_indexes, BodyPlan,
    DeltaWindow, EmitMemo, Engine, EvalError, EvalStats, FireStats, FixpointStrategy,
    ResourceGovernor, StratumStats,
};
use seqdl_syntax::Program;
use seqdl_syntax::{ProgramInfo, Rule, Stratum};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// Deterministic fault injection for the robustness test suite: arm a global
/// countdown and the Kth worker job fired through [`run_job`] panics inside
/// the `catch_unwind` region, exercising the poison → drain → recovery path.
/// Compiled only under the `fail-inject` feature; release builds carry no
/// trace of it.
#[cfg(feature = "fail-inject")]
pub mod fail {
    use std::sync::atomic::{AtomicIsize, Ordering};

    /// `-1` means disarmed; `k ≥ 0` means "panic on the job firing that
    /// decrements this to below zero" — i.e. the (k+1)-th firing after arming.
    static COUNTDOWN: AtomicIsize = AtomicIsize::new(-1);

    /// Arm the injector: the `k`-th subsequent worker-job firing panics
    /// (`k = 0` panics on the very next one).
    pub fn arm(k: usize) {
        COUNTDOWN.store(isize::try_from(k).unwrap_or(isize::MAX), Ordering::SeqCst);
    }

    /// Disarm the injector without firing.
    pub fn disarm() {
        COUNTDOWN.store(-1, Ordering::SeqCst);
    }

    /// Still waiting to fire?  `false` once the armed panic has happened (or
    /// the injector was never armed) — tests assert this to prove the fault
    /// was actually injected.
    pub fn armed() -> bool {
        COUNTDOWN.load(Ordering::SeqCst) >= 0
    }

    /// Called by every worker-job firing; panics exactly once per [`arm`].
    pub fn maybe_panic() {
        let chosen = COUNTDOWN
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                (v >= 0).then(|| v - 1)
            })
            .map_or(false, |prev| prev == 0);
        if chosen {
            panic!("fail-inject: injected worker panic");
        }
    }
}

/// Shared panic-poison flag for one executor run.  The first panicking job
/// sets it; every job drawn afterwards sees it and drains as an empty success,
/// so the round's merge (which processes outcomes in job order) surfaces
/// exactly one [`EvalError::WorkerPanic`].  A successful sequential recovery
/// clears the flag so the strata that follow run in parallel again.  This is
/// deliberately *not* the user-facing [`seqdl_core::CancelToken`]: poisoning
/// is an internal executor condition that a retry may absolve, while a
/// cancelled user token must stay cancelled.
#[derive(Debug, Default)]
struct Poison {
    flag: AtomicBool,
}

impl Poison {
    fn is_set(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    fn set(&self) {
        self.flag.store(true, Ordering::Release);
    }

    fn reset(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

/// The error reported when the worker pool's channels disconnect mid-round —
/// only possible if a pool thread died outside the contained panic path.
fn pool_died() -> EvalError {
    EvalError::Internal {
        detail: "executor worker pool disconnected".to_string(),
    }
}

/// Default number of delta tuples per shard when a recursive iteration is
/// split across the pool; override with [`Executor::with_shard_size`].
const DELTA_SHARD: usize = 128;

/// Upper bound on shards per delta window, as a multiple of the worker count:
/// a huge delta is split into at most `SHARD_FANOUT × threads` jobs (the shard
/// size grows instead), so the job queue is never flooded with thousands of
/// tiny windows.  Output is unaffected — relations compare as sets and the
/// merge stays in deterministic job order.
const SHARD_FANOUT: usize = 4;

/// One unit of work for a round: fire one rule, optionally restricted to a
/// delta window.  Jobs only read the instance; results come back as buffers.
#[derive(Clone, Copy, Debug)]
struct Job<'a> {
    id: usize,
    /// Index of the rule within its stratum's rule list — the per-rule
    /// profile key shard jobs are merged under.
    rule_ix: usize,
    rule: &'a Rule,
    plan: &'a BodyPlan,
    /// The rule's lowered RAM procedure; `None` runs the legacy matcher.
    proc: Option<&'a RuleProc>,
    window: Option<DeltaWindow>,
}

/// The result of one job: the derived facts and the firing-pass counters, or
/// the first evaluation error the job hit.
struct JobOutcome {
    id: usize,
    /// Stratum-relative rule index, copied from the job.
    rule_ix: usize,
    /// Wall-clock time the job's firing pass took on its worker thread.
    wall: Duration,
    result: Result<(Vec<Fact>, FireStats), EvalError>,
}

/// Evaluate one job against the shared instance, containing panics.
///
/// Every job produces exactly one [`JobOutcome`], so the driver's per-round
/// collect can never block on a missing result:
///
/// * if the run is already poisoned, the job *drains* — it returns an empty
///   success without evaluating anything, so the merge surfaces only the
///   panicking job's [`EvalError::WorkerPanic`];
/// * if evaluation panics, `catch_unwind` contains it, the poison flag is set
///   (draining the surviving workers' queues), and the outcome carries the
///   offending rule's rendering plus the panic payload.
fn run_job(
    job: Job<'_>,
    instance: &Instance,
    governor: &ResourceGovernor,
    poison: &Poison,
) -> JobOutcome {
    let id = job.id;
    if poison.is_set() {
        return JobOutcome {
            id,
            rule_ix: job.rule_ix,
            wall: Duration::ZERO,
            result: Ok((Vec::new(), FireStats::default())),
        };
    }
    let _rule_span = seqdl_trace::span(|| {
        format!(
            "rule r{} {}{}",
            job.rule_ix,
            job.rule.head.relation,
            match job.window {
                Some(w) => format!(" Δ{}..{}", w.lo, w.hi),
                None => String::new(),
            }
        )
    });
    let pass_start = Instant::now();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        #[cfg(feature = "fail-inject")]
        fail::maybe_panic();
        let mut out = Vec::new();
        // Jobs are independent work units, so each gets a fresh emit memo; it
        // still collapses duplicate derivations within the job's delta shard.
        let mut memo = EmitMemo::new();
        match job.proc {
            Some(proc) => fire_proc(
                proc,
                instance,
                job.window,
                &mut memo,
                &mut out,
                Some(governor),
            ),
            None => fire_rule(
                job.rule,
                job.plan,
                instance,
                job.window,
                &mut memo,
                &mut out,
                Some(governor),
            ),
        }
        .map(|fire| (out, fire))
    }))
    .unwrap_or_else(|panic| {
        let detail = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "worker panicked".to_string());
        poison.set();
        Err(EvalError::WorkerPanic {
            rule: job.rule.to_string(),
            detail,
        })
    });
    let wall = pass_start.elapsed();
    if seqdl_trace::enabled() {
        if let Ok((_, fire)) = &result {
            seqdl_trace::counter("index probes", fire.index_probes as u64);
            seqdl_trace::counter("scans", fire.scans as u64);
            seqdl_trace::counter("emits", fire.firings as u64);
        }
    }
    JobOutcome {
        id,
        rule_ix: job.rule_ix,
        wall,
        result,
    }
}

/// The worker loop: take jobs from the shared queue until it closes, evaluate
/// each under a read lock, send the private buffer back.  Panic containment
/// and poison draining live in [`run_job`].
fn worker(
    jobs: &Mutex<mpsc::Receiver<Job<'_>>>,
    results: mpsc::Sender<JobOutcome>,
    instance: &RwLock<Instance>,
    governor: &ResourceGovernor,
    poison: &Poison,
) {
    loop {
        // Hold the queue lock only while drawing one job; blocking in `recv`
        // under the lock is the idiomatic mpmc-over-mpsc pattern — the lock is
        // released as soon as a job (or disconnection) arrives.
        let job = match jobs.lock().recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let outcome = run_job(job, &instance.read(), governor, poison);
        if results.send(outcome).is_err() {
            return;
        }
    }
}

/// What the executor does when a worker job panics mid-stratum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Surface the [`EvalError::WorkerPanic`] immediately.
    Fail,
    /// Retry the affected stratum once on the engine's single-threaded path
    /// before giving up (the default).  The retry starts from the partially
    /// grown — but always consistent — instance; stratum rules are monotone
    /// over it, so the retried fixpoint lands on exactly the instance an
    /// undisturbed run computes.
    #[default]
    Sequential,
}

/// The stratified parallel executor.
///
/// Configured like [`Engine`] (it embeds one for limits, strategy, and the
/// merge/limit bookkeeping) plus a thread count.  `threads == 1` evaluates
/// in-line with no pool at all; `threads == 0` uses the machine's available
/// parallelism.
#[derive(Clone, Debug)]
pub struct Executor {
    engine: Engine,
    threads: usize,
    shard_size: usize,
    recovery: RecoveryPolicy,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new()
    }
}

impl Executor {
    /// An executor over a default [`Engine`], single-threaded.
    pub fn new() -> Executor {
        Executor {
            engine: Engine::new(),
            threads: 1,
            shard_size: DELTA_SHARD,
            recovery: RecoveryPolicy::default(),
        }
    }

    /// Use the given engine (limits and fixpoint strategy).
    pub fn with_engine(mut self, engine: Engine) -> Executor {
        self.engine = engine;
        self
    }

    /// Set the [`RecoveryPolicy`] applied when a worker job panics.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Executor {
        self.recovery = recovery;
        self
    }

    /// The configured panic-recovery policy.
    pub fn recovery(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// Set the base number of delta tuples per shard (minimum 1; default 128).
    /// A delta window is split into shards of at least this size, and into at
    /// most a small multiple of the worker count — whichever yields fewer
    /// shards — so small deltas stay in one job and huge deltas cannot flood
    /// the job queue.
    pub fn with_shard_size(mut self, shard_size: usize) -> Executor {
        self.shard_size = shard_size.max(1);
        self
    }

    /// The configured base shard size.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// The maximum number of shard jobs one delta window can fan out into
    /// (`SHARD_FANOUT ×` the effective thread count) — the clamp that keeps
    /// huge deltas from flooding the job queue.
    pub fn max_delta_shards(&self) -> usize {
        SHARD_FANOUT * self.effective_threads().max(1)
    }

    /// Set the number of compute threads.  `1` runs in-line (no pool); `N > 1`
    /// spawns `N − 1` pool workers with the driver thread executing one job
    /// per round itself, so exactly `N` threads compute; `0` means "use all
    /// available parallelism".
    pub fn with_threads(mut self, threads: usize) -> Executor {
        self.threads = threads;
        self
    }

    /// The effective worker count (resolving `0` to the machine parallelism).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }

    /// Evaluate `program` on `input`, returning the final instance.
    ///
    /// # Errors
    /// Ill-formed programs and exceeded resource limits, as for [`Engine::run`].
    pub fn run(&self, program: &Program, input: &Instance) -> Result<Instance, EvalError> {
        self.run_with_stats(program, input).map(|(i, _)| i)
    }

    /// Like [`Executor::run`], additionally returning evaluation statistics
    /// (including the per-stratum breakdown).
    ///
    /// # Errors
    /// Ill-formed programs and exceeded resource limits.
    pub fn run_with_stats(
        &self,
        program: &Program,
        input: &Instance,
    ) -> Result<(Instance, EvalStats), EvalError> {
        self.run_with_stats_seeded(program, input, &[])
    }

    /// Evaluate `program` on `input` with extra `seeds` injected before the
    /// first stratum — demand-driven (magic-set) query evaluation through the
    /// existing SCC schedule; see [`Engine::run_seeded`].
    ///
    /// # Errors
    /// Ill-formed programs, seed arity mismatches, and exceeded resource
    /// limits.
    pub fn run_seeded(
        &self,
        program: &Program,
        input: &Instance,
        seeds: &[Fact],
    ) -> Result<Instance, EvalError> {
        self.run_with_stats_seeded(program, input, seeds)
            .map(|(i, _)| i)
    }

    /// Like [`Executor::run_seeded`], additionally returning evaluation
    /// statistics.
    ///
    /// # Errors
    /// Ill-formed programs, seed arity mismatches, and exceeded resource
    /// limits.
    pub fn run_with_stats_seeded(
        &self,
        program: &Program,
        input: &Instance,
        seeds: &[Fact],
    ) -> Result<(Instance, EvalStats), EvalError> {
        let info = ProgramInfo::analyse(program)?;
        let mut instance = prepare_idb_instance(&info, input)?;
        seqdl_engine::seed_instance(&mut instance, seeds)?;
        let schedule = Schedule::of_program(program);
        // Plan every rule up front: jobs borrow the plans for the lifetime of
        // the worker pool.
        let plans: Vec<Vec<BodyPlan>> = program
            .strata
            .iter()
            .map(|s| s.rules.iter().map(plan_rule).collect::<Result<Vec<_>, _>>())
            .collect::<Result<_, _>>()?;
        // Register the planner-selected multi-column indexes before the pool
        // starts: workers only ever read the instance, and inserts (which all
        // happen under the driver's write lock) maintain the indexes.
        register_plan_indexes(plans.iter().flatten(), &mut instance);
        // Derived relations keep only the column tries some plan can probe;
        // every other column stops paying per-insert indexing.
        seqdl_engine::restrict_head_indexes(
            info.idb.iter().copied(),
            plans.iter().flatten(),
            &mut instance,
        );
        // Lower the whole program to RAM up front (unless disabled): jobs
        // borrow the procedures for the lifetime of the worker pool.  The
        // lowering derives its fixpoint scopes from the same precedence-graph
        // condensation as the schedule, so delta positions agree exactly.
        let lowered: Option<ram::Program> = self
            .engine
            .ram_enabled()
            .then(|| ram::lower(program))
            .transpose()?;
        let mut stats = EvalStats::default();
        let threads = self.effective_threads();
        let shard = ShardPolicy {
            base: self.shard_size,
            max_shards: SHARD_FANOUT * threads.max(1),
        };
        let lock = RwLock::new(instance);
        // One governor per run: the deadline clock starts here, the store
        // baseline is sampled here, and every checkpoint below (stratum
        // boundaries, fixpoint rounds, amortised in-job instruction checks)
        // polls the same governor from every thread.
        let governor =
            ResourceGovernor::for_run(&self.engine.limits(), self.engine.cancel_token().cloned());
        let poison = Poison::default();
        let ctx = RunCtx {
            engine: &self.engine,
            governor: &governor,
            poison: &poison,
            recovery: self.recovery,
            shard,
        };

        let _run_span = seqdl_trace::span(|| "run".to_string());
        let outcome = if threads <= 1 {
            drive(
                &ctx,
                &program.strata,
                &schedule,
                &plans,
                lowered.as_ref(),
                &lock,
                &mut stats,
                |jobs| {
                    let guard = lock.read();
                    jobs.into_iter()
                        .map(|job| run_job(job, &guard, &governor, &poison))
                        .collect()
                },
            )
        } else {
            let (job_tx, job_rx) = mpsc::channel::<Job<'_>>();
            let job_queue = Mutex::new(job_rx);
            let (out_tx, out_rx) = mpsc::channel::<JobOutcome>();
            thread::scope(|scope| {
                // The driver runs one job per round itself, so it is the Nth
                // compute thread: spawn N−1 pool workers.
                for _ in 0..threads - 1 {
                    let results = out_tx.clone();
                    let queue = &job_queue;
                    let shared = &lock;
                    let gov = &governor;
                    let poi = &poison;
                    scope.spawn(move || worker(queue, results, shared, gov, poi));
                }
                // Workers hold clones; dropping the original lets a round's
                // collect fail fast (instead of hanging) if the pool ever dies.
                drop(out_tx);
                let outcome = drive(
                    &ctx,
                    &program.strata,
                    &schedule,
                    &plans,
                    lowered.as_ref(),
                    &lock,
                    &mut stats,
                    |jobs| {
                        // The driver thread is a worker too: hand all but the
                        // first job to the pool, run the first one in place
                        // (small rounds — the serial tail of a fixpoint — never
                        // pay a channel round-trip), then collect the rest.
                        let expected = jobs.len();
                        let mut outcomes = Vec::with_capacity(expected);
                        let mut jobs = jobs.into_iter();
                        let first = jobs.next();
                        for job in jobs {
                            let (id, rule_ix) = (job.id, job.rule_ix);
                            if job_tx.send(job).is_err() {
                                outcomes.push(JobOutcome {
                                    id,
                                    rule_ix,
                                    wall: Duration::ZERO,
                                    result: Err(pool_died()),
                                });
                            }
                        }
                        if let Some(job) = first {
                            outcomes.push(run_job(job, &lock.read(), &governor, &poison));
                        }
                        while outcomes.len() < expected {
                            match out_rx.recv() {
                                Ok(outcome) => outcomes.push(outcome),
                                Err(_) => {
                                    outcomes.push(JobOutcome {
                                        id: usize::MAX,
                                        rule_ix: 0,
                                        wall: Duration::ZERO,
                                        result: Err(pool_died()),
                                    });
                                    break;
                                }
                            }
                        }
                        outcomes
                    },
                );
                // Closing the job queue ends the workers; the scope joins them.
                drop(job_tx);
                outcome
            })
        };
        match outcome {
            Ok(()) => Ok((lock.into_inner(), stats)),
            // Cancelled errors pick up the run's accumulated statistics here —
            // governor checkpoints deep in the evaluation cannot see them.
            Err(e) => Err(e.with_partial_stats(stats)),
        }
    }
}

/// Per-run context shared by the schedule driver and the fixpoint loops: the
/// embedded engine (limits, strategy, merge bookkeeping), the run's resource
/// governor, the panic-poison flag, and the recovery and sharding policies.
struct RunCtx<'e> {
    engine: &'e Engine,
    governor: &'e ResourceGovernor,
    poison: &'e Poison,
    recovery: RecoveryPolicy,
    shard: ShardPolicy,
}

/// How delta windows are split into shard jobs: at least `base` tuples per
/// shard, at most `max_shards` shards per window.
#[derive(Clone, Copy, Debug)]
struct ShardPolicy {
    base: usize,
    max_shards: usize,
}

impl ShardPolicy {
    /// The shard size used for a delta window of `span` tuples.
    fn size_for(&self, span: usize) -> usize {
        let base = self.base.max(1);
        let max_shards = self.max_shards.max(1);
        if span.div_ceil(base) > max_shards {
            span.div_ceil(max_shards)
        } else {
            base
        }
    }
}

/// Start a new evaluation round of the current fixpoint scope, enforcing the
/// shared iteration limit.  The engine bounds the rounds of each declared
/// stratum's fixpoint; the executor bounds the rounds of each *scheduled*
/// fixpoint — a level's single-pass round or one lock-step recursive group.
/// A scheduled fixpoint runs its component with complete inputs, so it never
/// needs more rounds than the engine's joint stratum fixpoint: the executor
/// hitting `LimitExceeded` implies the engine does too at the same limit (the
/// converse may not hold when one stratum chains several recursive components
/// — the executor's per-fixpoint rounds are then genuinely fewer than the
/// engine's joint rounds).  On strata whose recursion is one component — the
/// diverging programs the limit exists for — the two counts coincide exactly,
/// which `tests/engine_exec_limits.rs` pins at 1, 2, and 4 threads.
fn next_round(rounds: &mut usize, engine: &Engine) -> Result<(), EvalError> {
    let limit = engine.limits().max_iterations;
    if *rounds >= limit {
        return Err(EvalError::LimitExceeded {
            what: LimitKind::Iterations,
            limit,
        });
    }
    *rounds += 1;
    Ok(())
}

/// The schedule driver: walk strata, then levels; fire each level's
/// non-recursive components in one single-pass round, then advance the level's
/// recursive components as lock-step semi-naive fixpoints.
///
/// This is also where panic recovery lives: when a stratum's parallel attempt
/// surfaces [`EvalError::WorkerPanic`] and the policy is
/// [`RecoveryPolicy::Sequential`], the stratum retries once on the engine's
/// single-threaded path (which never runs worker jobs) before the run gives
/// up.
#[allow(clippy::too_many_arguments)]
fn drive<'a>(
    ctx: &RunCtx<'_>,
    strata: &'a [Stratum],
    schedule: &Schedule,
    plans: &'a [Vec<BodyPlan>],
    lowered: Option<&'a ram::Program>,
    instance: &RwLock<Instance>,
    stats: &mut EvalStats,
    mut round: impl FnMut(Vec<Job<'a>>) -> Vec<JobOutcome>,
) -> Result<(), EvalError> {
    for (si, ((stratum, sched), stratum_plans)) in
        strata.iter().zip(&schedule.strata).zip(plans).enumerate()
    {
        let _stratum_span = seqdl_trace::span(|| format!("stratum {si}"));
        // Stratum boundary: the full governor check — cancellation, deadline,
        // and the store byte budget — runs before any job is scheduled.
        seqdl_trace::instant("governor check");
        ctx.governor.check()?;
        let procs: Option<&'a [RuleProc]> = lowered.map(|l| l.strata[si].procs.as_slice());
        let start = Instant::now();
        let before = (stats.iterations, stats.derived_facts, stats.rule_firings);
        let attempt = run_stratum(
            ctx,
            stratum,
            sched,
            stratum_plans,
            procs,
            instance,
            stats,
            &mut round,
        );
        match attempt {
            Ok(()) => {}
            Err(EvalError::WorkerPanic { .. }) if ctx.recovery == RecoveryPolicy::Sequential => {
                // A worker job panicked; the poison flag has already drained
                // the surviving workers' queues.  Retry the whole stratum once
                // sequentially: the instance is consistent (merges are atomic
                // under the write lock) and stratum rules are monotone over
                // it, so re-running from the partially grown state reaches
                // exactly the fixpoint an undisturbed run computes.
                let _recovery_span = seqdl_trace::span(|| format!("recover stratum {si}"));
                let rules: Vec<&Rule> = stratum.rules.iter().collect();
                let mut guard = instance.write();
                ctx.engine.eval_rule_set_governed(
                    &rules,
                    &stratum.head_relations(),
                    &mut guard,
                    stats,
                    ctx.governor,
                )?;
                drop(guard);
                // Recovery succeeded: later strata run in parallel again.
                ctx.poison.reset();
            }
            Err(e) => return Err(e),
        }
        stats.strata.push(StratumStats {
            rules: stratum.rules.len(),
            iterations: stats.iterations - before.0,
            derived_facts: stats.derived_facts - before.1,
            rule_firings: stats.rule_firings - before.2,
            shards: std::mem::take(&mut stats.delta_shards),
            wall: start.elapsed(),
        });
    }
    Ok(())
}

/// One stratum's parallel schedule: walk the levels, fire each level's
/// non-recursive components in one single-pass round, then advance the level's
/// recursive components as a lock-step fixpoint group.
#[allow(clippy::too_many_arguments)]
fn run_stratum<'a>(
    ctx: &RunCtx<'_>,
    stratum: &'a Stratum,
    sched: &StratumSchedule,
    stratum_plans: &'a [BodyPlan],
    procs: Option<&'a [RuleProc]>,
    instance: &RwLock<Instance>,
    stats: &mut EvalStats,
    round: &mut impl FnMut(Vec<Job<'a>>) -> Vec<JobOutcome>,
) -> Result<(), EvalError> {
    for (li, level) in sched.levels.iter().enumerate() {
        let _level_span = seqdl_trace::span(|| format!("level {li}"));
        // Each level's single pass and each lock-step group is its own
        // fixpoint scope for the iteration limit; see [`next_round`].
        let mut rounds = 0usize;
        // Phase 1: every non-recursive component of the level — independent
        // SCCs — fires together in one single-pass round.
        let mut jobs: Vec<Job<'a>> = Vec::new();
        for &c in level {
            let component = &sched.components[c];
            if component.recursive {
                continue;
            }
            for &rule_ix in &component.rule_indices {
                jobs.push(Job {
                    id: jobs.len(),
                    rule_ix,
                    rule: &stratum.rules[rule_ix],
                    plan: &stratum_plans[rule_ix],
                    proc: procs.map(|p| &p[rule_ix]),
                    window: None,
                });
            }
        }
        if !jobs.is_empty() {
            let _round_span = seqdl_trace::span(|| "round 0".to_string());
            next_round(&mut rounds, ctx.engine)?;
            seqdl_trace::instant("governor check");
            ctx.governor.check()?;
            stats.iterations += 1;
            let outcomes = round(jobs);
            merge(ctx.engine, instance, outcomes, stats, stratum)?;
        }
        // Phase 2: the recursive components of the level.  They never read
        // from one another, so their fixpoints advance in lock-step: every
        // round pools the rule-variant × delta-shard jobs of *all*
        // components still growing, and each component converges (and drops
        // out) independently.
        let recursive: Vec<&Component> = level
            .iter()
            .map(|&c| &sched.components[c])
            .filter(|c| c.recursive)
            .collect();
        if !recursive.is_empty() {
            fixpoint_group(
                ctx,
                stratum,
                stratum_plans,
                procs,
                &recursive,
                &mut rounds,
                instance,
                stats,
                round,
            )?;
        }
    }
    Ok(())
}

/// Per-component fixpoint state inside a lock-step group.
struct ComponentState<'a, 'c> {
    component: &'c Component,
    /// `(stratum-relative rule index, rule, plan, proc)` per component rule.
    rules: Vec<(usize, &'a Rule, &'a BodyPlan, Option<&'a RuleProc>)>,
    /// Per rule: the plan positions that draw from this component's delta.
    delta_positions: Vec<Vec<usize>>,
    /// Watermark per component relation: its length at the previous iteration
    /// boundary.
    delta_start: BTreeMap<RelName, usize>,
    iteration: usize,
    /// Still growing?  A converged component contributes no further jobs.
    active: bool,
}

/// Semi-naive fixpoints of the recursive components of one level, advanced in
/// lock-step, mirroring [`Engine::eval_rule_set`] per component but with each
/// round pooling every active component's rule variants — split over disjoint
/// delta shards — into one parallel fan-out.  The components never read each
/// other's relations (they share a level), so lock-step rounds derive exactly
/// what sequential per-component fixpoints would.
#[allow(clippy::too_many_arguments)]
fn fixpoint_group<'a, R: FnMut(Vec<Job<'a>>) -> Vec<JobOutcome>>(
    ctx: &RunCtx<'_>,
    stratum: &'a Stratum,
    plans: &'a [BodyPlan],
    procs: Option<&'a [RuleProc]>,
    components: &[&Component],
    rounds: &mut usize,
    instance: &RwLock<Instance>,
    stats: &mut EvalStats,
    round: &mut R,
) -> Result<(), EvalError> {
    let naive = ctx.engine.strategy() == FixpointStrategy::Naive;
    let mut states: Vec<ComponentState<'a, '_>> = components
        .iter()
        .map(|component| {
            let rules: Vec<(usize, &'a Rule, &'a BodyPlan, Option<&'a RuleProc>)> = component
                .rule_indices
                .iter()
                .map(|&i| (i, &stratum.rules[i], &plans[i], procs.map(|p| &p[i])))
                .collect();
            let delta_positions = rules
                .iter()
                .map(|(_, _, plan, _)| plan.delta_positions(&component.relations))
                .collect();
            ComponentState {
                component,
                rules,
                delta_positions,
                delta_start: BTreeMap::new(),
                iteration: 0,
                active: true,
            }
        })
        .collect();

    let mut group_round = 0usize;
    while states.iter().any(|s| s.active) {
        let _round_span = seqdl_trace::span(|| format!("round {group_round}"));
        group_round += 1;
        next_round(rounds, ctx.engine)?;
        // Every fixpoint round is a governor checkpoint: a cancelled token, an
        // expired deadline, or a blown store budget stops the loop here even
        // if every individual job stays under the amortised in-job check.
        seqdl_trace::instant("governor check");
        ctx.governor.check()?;
        stats.iterations += 1;
        let mut jobs: Vec<Job<'a>> = Vec::new();
        {
            let guard = instance.read();
            for state in states.iter().filter(|s| s.active) {
                if state.iteration == 0 || naive {
                    for &(rule_ix, rule, plan, proc) in &state.rules {
                        jobs.push(Job {
                            id: jobs.len(),
                            rule_ix,
                            rule,
                            plan,
                            proc,
                            window: None,
                        });
                    }
                    continue;
                }
                for (&(rule_ix, rule, plan, proc), positions) in
                    state.rules.iter().zip(&state.delta_positions)
                {
                    for &pos in positions {
                        let relation = plan.predicate_at(pos)?.pred.relation;
                        let hi = guard.relation(relation).map_or(0, Relation::len);
                        let lo = state.delta_start.get(&relation).copied().unwrap_or(hi);
                        if lo >= hi {
                            continue;
                        }
                        // Split the delta into equal shards; the shard count is
                        // clamped to a small multiple of the worker count.
                        let size = ctx.shard.size_for(hi - lo);
                        stats.note_shards((hi - lo).div_ceil(size));
                        let mut shard_lo = lo;
                        while shard_lo < hi {
                            let shard_hi = (shard_lo + size).min(hi);
                            jobs.push(Job {
                                id: jobs.len(),
                                rule_ix,
                                rule,
                                plan,
                                proc,
                                window: Some(DeltaWindow {
                                    pos,
                                    lo: shard_lo,
                                    hi: shard_hi,
                                }),
                            });
                            shard_lo = shard_hi;
                        }
                    }
                }
            }
        }
        // Watermarks recorded before merging: facts inserted by this round land
        // at ids ≥ these marks and form each component's next delta.
        let marks: Vec<BTreeMap<RelName, usize>> = {
            let guard = instance.read();
            states
                .iter()
                .map(|state| {
                    state
                        .component
                        .relations
                        .iter()
                        .map(|r| (*r, guard.relation(*r).map_or(0, Relation::len)))
                        .collect()
                })
                .collect()
        };
        let outcomes = round(jobs);
        merge(ctx.engine, instance, outcomes, stats, stratum)?;
        // A component keeps iterating exactly while its own relations grew;
        // growth is visible as a length past the pre-merge watermark.
        let guard = instance.read();
        for (state, marks) in states.iter_mut().zip(marks) {
            if !state.active {
                continue;
            }
            let grew = marks
                .iter()
                .any(|(r, &mark)| guard.relation(*r).map_or(0, Relation::len) > mark);
            state.active = grew;
            state.delta_start = marks;
            state.iteration += 1;
        }
    }
    Ok(())
}

/// Merge a round's private buffers into the shared store under the write lock,
/// in ascending job order — the single mutation point of the executor.  Errors
/// are reported in job order too, so failures are deterministic, and so is the
/// per-rule profile: shard jobs fold into `stats.rules` in job order under the
/// same lock, keyed by `(stratum, rule index)`, regardless of which worker ran
/// them or when they finished.
fn merge(
    engine: &Engine,
    instance: &RwLock<Instance>,
    mut outcomes: Vec<JobOutcome>,
    stats: &mut EvalStats,
    stratum: &Stratum,
) -> Result<bool, EvalError> {
    let _merge_span = seqdl_trace::span(|| "merge".to_string());
    // The stratum under construction: `drive` pushes its `StratumStats` entry
    // only after the stratum completes.
    let stratum_ix = stats.strata.len();
    outcomes.sort_by_key(|o| o.id);
    let mut guard = instance.write();
    let mut grew = false;
    for outcome in outcomes {
        let rule_ix = outcome.rule_ix;
        let (mut facts, fire) = outcome.result?;
        stats.apply_rule_fire(
            stratum_ix,
            rule_ix,
            || stratum.rules[rule_ix].to_string(),
            fire,
            outcome.wall,
            facts.len(),
        );
        grew |= engine.absorb(&mut guard, &mut facts, stats)?;
    }
    Ok(grew)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use seqdl_core::{path_of, rel};
    use seqdl_engine::EvalLimits;
    use seqdl_syntax::parse_program;

    fn graph_instance(edges: &[(&str, &str)]) -> Instance {
        let mut input = Instance::new();
        for (x, y) in edges {
            input
                .insert_fact(Fact::new(rel("R"), vec![path_of(&[x, y])]))
                .unwrap();
        }
        input
    }

    #[test]
    fn nonrecursive_strata_take_a_single_pass() {
        // Two declared strata, each a single level: one round per stratum.
        let program = parse_program("T($x) <- R($x).\n---\nS($x) <- T($x), !B($x).").unwrap();
        let input = Instance::unary(rel("R"), [path_of(&["a"]), path_of(&["b"])]);
        let (out, stats) = Executor::new().run_with_stats(&program, &input).unwrap();
        assert_eq!(out.unary_paths(rel("S")).len(), 2);
        assert_eq!(stats.strata.len(), 2);
        for stratum in &stats.strata {
            assert_eq!(stratum.iterations, 1, "single pass per stratum: {stats:?}");
        }
        // The engine's whole-stratum fixpoint needs the extra convergence round.
        let (_, engine_stats) = Engine::new().run_with_stats(&program, &input).unwrap();
        assert!(engine_stats.iterations > stats.iterations);
        // Same firing count: no rule was evaluated twice.
        assert_eq!(engine_stats.rule_firings, stats.rule_firings);
    }

    #[test]
    fn nonrecursive_chain_takes_one_round_per_level() {
        let program =
            parse_program("T1($x) <- R($x).\nT2($x) <- T1($x).\nS($x) <- T2($x).").unwrap();
        let input = Instance::unary(rel("R"), [path_of(&["a"])]);
        let (out, stats) = Executor::new().run_with_stats(&program, &input).unwrap();
        assert_eq!(out.unary_paths(rel("S")).len(), 1);
        assert_eq!(stats.strata[0].iterations, 3, "one round per level");
        assert_eq!(stats.rule_firings, 3, "each rule fired exactly once");
    }

    #[test]
    fn executor_matches_engine_on_recursive_programs() {
        let program = parse_program(
            "T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).\nS($p) <- T($p).",
        )
        .unwrap();
        let input = graph_instance(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("b", "e")]);
        let sequential = Engine::new().run(&program, &input).unwrap();
        for threads in [1usize, 2, 4] {
            let parallel = Executor::new()
                .with_threads(threads)
                .run(&program, &input)
                .unwrap();
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn executor_matches_engine_on_mutual_recursion_and_negation() {
        let program = parse_program(
            "P($x) <- R($x·a).\nP($x) <- Q($x·b).\nQ($x) <- P($x·a).\nQ($x) <- R($x).\n---\n\
             S($x) <- Q($x), !P($x).",
        )
        .unwrap();
        let input = Instance::unary(
            rel("R"),
            [
                path_of(&["a", "a", "a", "b"]),
                path_of(&["b", "a"]),
                path_of(&["a", "b", "a", "a"]),
            ],
        );
        let sequential = Engine::new().run(&program, &input).unwrap();
        for threads in [1usize, 2, 4] {
            let parallel = Executor::new()
                .with_threads(threads)
                .run(&program, &input)
                .unwrap();
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn same_level_independent_components_evaluate_together() {
        let program =
            parse_program("T($x) <- R($x).\nU($x·$x) <- R($x).\nS($x) <- T($x), U($x·$x).")
                .unwrap();
        let input = Instance::unary(rel("R"), [path_of(&["a"]), path_of(&["b"])]);
        let (out, stats) = Executor::new()
            .with_threads(2)
            .run_with_stats(&program, &input)
            .unwrap();
        assert_eq!(out.unary_paths(rel("S")).len(), 2);
        // T and U share level 0, S is level 1: two rounds total.
        assert_eq!(stats.strata[0].iterations, 2);
    }

    #[test]
    fn independent_recursive_components_advance_in_lock_step() {
        // P and Q are independent suffix-closure recursions sharing level 0:
        // the group fixpoint pools both components' jobs per round, so the
        // stratum's round count is driven by the *deeper* component (P over the
        // length-4 path: 5 productive rounds + 1 convergence round = 6), not
        // the sum of both components' fixpoints (6 + 4 = 10 run serially).
        let program = parse_program(
            "P($x) <- R($x).\nP($y) <- P(@u·$y).\nQ($x) <- S($x).\nQ($y) <- Q(@u·$y).",
        )
        .unwrap();
        let mut input = Instance::unary(rel("R"), [path_of(&["a", "b", "c", "d"])]);
        input
            .insert_fact(Fact::new(rel("S"), vec![path_of(&["x", "y"])]))
            .unwrap();
        let sequential = Engine::new().run(&program, &input).unwrap();
        for threads in [1usize, 2, 4] {
            let (parallel, stats) = Executor::new()
                .with_threads(threads)
                .run_with_stats(&program, &input)
                .unwrap();
            assert_eq!(sequential, parallel, "threads = {threads}");
            assert_eq!(stats.strata[0].iterations, 6, "lock-step rounds: {stats:?}");
        }
    }

    #[test]
    fn diverging_programs_hit_the_iteration_limit() {
        let program = parse_program("T(a).\nT(a·$x) <- T($x).").unwrap();
        let tight = Engine::new().with_limits(EvalLimits {
            max_iterations: 20,
            max_facts: 100_000,
            max_path_len: 100_000,
            ..EvalLimits::default()
        });
        for threads in [1usize, 4] {
            let err = Executor::new()
                .with_engine(tight.clone())
                .with_threads(threads)
                .run(&program, &Instance::new())
                .unwrap_err();
            assert!(matches!(err, EvalError::LimitExceeded { .. }), "{err}");
        }
    }

    #[test]
    fn naive_strategy_is_supported() {
        let program = parse_program(
            "T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).\nS($p) <- T($p).",
        )
        .unwrap();
        let input = graph_instance(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let naive = Executor::new()
            .with_engine(Engine::new().with_strategy(FixpointStrategy::Naive))
            .with_threads(2)
            .run(&program, &input)
            .unwrap();
        let semi = Executor::new()
            .with_threads(2)
            .run(&program, &input)
            .unwrap();
        assert_eq!(naive, semi);
    }

    #[test]
    fn idb_relations_in_the_input_are_rejected() {
        let program = parse_program("S($x) <- R($x).").unwrap();
        let input = Instance::unary(rel("S"), [path_of(&["a"])]);
        assert!(matches!(
            Executor::new().run(&program, &input),
            Err(EvalError::IdbRelationInInput { .. })
        ));
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let exec = Executor::new().with_threads(0);
        assert!(exec.effective_threads() >= 1);
        let program = parse_program("S($x) <- R($x).").unwrap();
        let input = Instance::unary(rel("R"), [path_of(&["a"])]);
        assert_eq!(
            exec.run(&program, &input)
                .unwrap()
                .unary_paths(rel("S"))
                .len(),
            1
        );
    }

    #[test]
    fn shard_policy_clamps_the_shard_count() {
        let policy = ShardPolicy {
            base: 128,
            max_shards: 8,
        };
        // Small deltas keep the base size (one or a few jobs).
        assert_eq!(policy.size_for(100), 128);
        assert_eq!(policy.size_for(1024), 128);
        // A huge delta is split into at most `max_shards` jobs.
        assert_eq!(policy.size_for(10_000), 1250);
        assert!(10_000usize.div_ceil(policy.size_for(10_000)) <= 8);
        // Degenerate configurations stay usable.
        let tiny = ShardPolicy {
            base: 0,
            max_shards: 0,
        };
        assert_eq!(tiny.size_for(5), 5);
    }

    #[test]
    fn custom_shard_sizes_preserve_the_output() {
        let program = parse_program("T($x) <- R($x).\nT($y) <- T(@u·$y).").unwrap();
        let paths: Vec<_> = (0..50)
            .map(|i| path_of(&[&format!("n{i}"), "x", "y"]))
            .collect();
        let input = Instance::unary(rel("R"), paths);
        let sequential = Engine::new().run(&program, &input).unwrap();
        for (threads, shard) in [(1usize, 1usize), (2, 7), (4, 1000)] {
            let exec = Executor::new().with_threads(threads).with_shard_size(shard);
            assert_eq!(exec.shard_size(), shard.max(1));
            let parallel = exec.run(&program, &input).unwrap();
            assert_eq!(sequential, parallel, "threads = {threads}, shard = {shard}");
        }
        // A zero shard size is clamped to 1 instead of dividing by zero.
        assert_eq!(Executor::new().with_shard_size(0).shard_size(), 1);
    }

    #[test]
    fn seeded_runs_inject_demand_before_the_first_stratum() {
        // The seed populates an IDB relation — plain inputs must not do that,
        // demand seeds may.
        let program = parse_program("T($x) <- M($x).\nT($y) <- T(@u·$y).\nM(z).").unwrap();
        let seeds = vec![Fact::new(rel("M"), vec![path_of(&["a", "b"])])];
        let out = Executor::new()
            .with_threads(2)
            .run_seeded(&program, &Instance::new(), &seeds)
            .unwrap();
        let t = out.unary_paths(rel("T"));
        assert!(t.contains(&path_of(&["a", "b"])));
        assert!(t.contains(&path_of(&["b"])));
        let engine_out = Engine::new()
            .run_seeded(&program, &Instance::new(), &seeds)
            .unwrap();
        assert_eq!(engine_out, out);
    }

    #[test]
    fn delta_sharding_covers_large_deltas() {
        // A recursive component whose first delta exceeds one shard (> 128
        // tuples): suffixes of a long path, derived one per iteration, but the
        // *base* rule's initial pass seeds > 128 tuples at once via R.
        let program = parse_program("T($x) <- R($x).\nT($y) <- T(@u·$y).").unwrap();
        let paths: Vec<_> = (0..300)
            .map(|i| path_of(&[&format!("n{i}"), "x"]))
            .collect();
        let input = Instance::unary(rel("R"), paths);
        let sequential = Engine::new().run(&program, &input).unwrap();
        for threads in [1usize, 4] {
            let parallel = Executor::new()
                .with_threads(threads)
                .run(&program, &input)
                .unwrap();
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }
}
