//! Body planning: ordering the literals of a rule body for evaluation.
//!
//! For a safe rule (Section 2.2) the limited-variable fixpoint guarantees an order
//! in which
//!
//! 1. positive predicates are matched first (binding their variables),
//! 2. each positive equation is evaluated at a point where at least one of its
//!    sides is fully bound (so it can be solved by matching against a ground path),
//! 3. negated predicates and negated equations are checked last, when all their
//!    variables are bound.
//!
//! Beyond ordering, the planner precomputes *how to probe* the storage layer
//! for each positive predicate: per argument column, the sequence of leading
//! values that is statically known at match time (the same information the
//! adornment layer's sideways-information passing computes), and — when two or
//! more columns have a guaranteed first value — the column set of a
//! multi-column join-key index the relation should maintain.

use crate::error::EvalError;
use seqdl_core::{AtomId, RelName, Value};
use seqdl_syntax::{Atom, Literal, Predicate, Rule, Term, Var, VarKind};
use std::collections::BTreeSet;

/// One statically-resolvable contributor to a column's known path prefix,
/// derived from a leading term of the argument expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PrefixSource {
    /// A constant term: exactly one known atom value.
    Const(AtomId),
    /// A ground packed term, interned at plan time: one known packed value.
    Packed(Value),
    /// An atomic variable bound by an earlier step: one value at runtime.
    AtomVar(Var),
    /// A path variable bound by an earlier step: zero or more values at
    /// runtime (its binding may be `ε`).
    PathVar(Var),
}

/// How the evaluator can probe one argument column of a predicate: the
/// column's statically-known leading values, resolved against the valuation
/// in hand when the predicate is matched and fed to the relation's per-column
/// prefix trie ([`seqdl_core::PrefixTrie`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnProbe {
    /// The leading sources of the argument expression, up to (and excluding)
    /// the first term whose denotation is unknown at match time.  Empty means
    /// nothing about the column's prefix is known.
    pub sources: Vec<PrefixSource>,
    /// The sources cover the *whole* argument expression.  With an empty
    /// resolved prefix this pins the column to exactly `ε`.
    pub exact: bool,
    /// The argument starts with a packed term containing unbound variables:
    /// no exact first value, but the column must start with *some* packed
    /// value.
    pub leading_packed_var: bool,
}

impl ColumnProbe {
    /// Can this column ever contribute an index probe?
    pub fn can_probe(&self) -> bool {
        !self.sources.is_empty() || self.exact || self.leading_packed_var
    }

    /// Is the column's *first* value guaranteed resolvable at runtime?  (The
    /// eligibility condition for membership in a joint index's column set:
    /// path variables are excluded because their binding may be `ε`.)
    pub fn first_value_guaranteed(&self) -> bool {
        matches!(
            self.sources.first(),
            Some(PrefixSource::Const(_) | PrefixSource::Packed(_) | PrefixSource::AtomVar(_))
        )
    }

    /// How many leading values the relation's column trie should index for
    /// this probe to use its full statically-known prefix: zero when the
    /// column never yields a prefix, [`seqdl_core::TRIE_DEPTH`] when a bound
    /// path variable contributes an unbounded number of values, and the
    /// source count when a bound *atomic* variable occurs among the sources.
    ///
    /// A prefix made of constants only stays at depth one: such a probe asks
    /// the same question on every call (once per rule variant per round, not
    /// once per candidate valuation), so the first-value bucket plus ordinary
    /// match filtering answers it — while deeper indexing would tax every
    /// insert of the relation for it.  Variable-bearing prefixes change per
    /// candidate, which is where deep tries earn their insert cost.
    pub fn wanted_depth(&self) -> usize {
        if self.sources.is_empty() {
            return 0;
        }
        if self
            .sources
            .iter()
            .any(|s| matches!(s, PrefixSource::PathVar(_)))
        {
            return seqdl_core::TRIE_DEPTH;
        }
        if self
            .sources
            .iter()
            .all(|s| matches!(s, PrefixSource::Const(_) | PrefixSource::Packed(_)))
        {
            return 1;
        }
        self.sources.len().min(seqdl_core::TRIE_DEPTH)
    }
}

/// A positive predicate step: the predicate plus one [`ColumnProbe`] per argument
/// column, precomputed so matching can probe the relation's prefix tries — or a
/// planner-selected multi-column join index — instead of scanning every tuple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedPredicate {
    /// The predicate to match.
    pub pred: Predicate,
    /// Per-column probe strategy (same length as `pred.args`).
    pub probes: Vec<ColumnProbe>,
    /// Columns whose first value is guaranteed at runtime, when there are at
    /// least two: the evaluator registers a joint index over exactly this set
    /// on the predicate's relation and probes it with the resolved values.
    pub joint_cols: Option<Vec<usize>>,
    /// Every argument is a sequence of constants and *atomic* variables (and
    /// the predicate binds few enough variables for a stack frame): matching
    /// never backtracks, so the evaluator uses a non-recursive flat loop
    /// instead of the general continuation-passing matcher.
    pub flat: bool,
    /// Bucket-side matching eligibility: the predicate is unary and flat, and
    /// its column's terms are all prefix sources except at most one trailing
    /// unbound atomic variable.  `Some(None)` — the prefix covers the whole
    /// pattern (match = length check); `Some(Some(v))` — one trailing
    /// variable, bound from the bucket entry's next-value.  Candidates from
    /// the column trie then finish matching without touching the tuple store.
    pub extend: Option<Option<Var>>,
}

/// Upper bound on variables a [flat](PlannedPredicate::flat) match may newly
/// bind (the evaluator's stack frame for backtracking them out).
pub const FLAT_MAX_VARS: usize = 16;

fn is_flat(pred: &Predicate) -> bool {
    let terms = pred
        .args
        .iter()
        .flat_map(|arg| arg.terms().iter())
        .collect::<Vec<_>>();
    terms.len() <= FLAT_MAX_VARS
        && terms.iter().all(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => v.kind == VarKind::Atom,
            Term::Packed(_) => false,
        })
}

fn column_probes(pred: &Predicate, bound_before: &BTreeSet<Var>) -> Vec<ColumnProbe> {
    pred.args
        .iter()
        .map(|arg| {
            let mut sources = Vec::new();
            let mut exact = true;
            let mut leading_packed_var = false;
            for term in arg.terms() {
                match term {
                    Term::Const(a) => sources.push(PrefixSource::Const(*a)),
                    Term::Packed(inner) => match inner.as_path() {
                        Some(p) => sources.push(PrefixSource::Packed(Value::packed(p))),
                        None => {
                            leading_packed_var = sources.is_empty();
                            exact = false;
                            break;
                        }
                    },
                    Term::Var(v) if bound_before.contains(v) => sources.push(match v.kind {
                        VarKind::Atom => PrefixSource::AtomVar(*v),
                        VarKind::Path => PrefixSource::PathVar(*v),
                    }),
                    Term::Var(_) => {
                        exact = false;
                        break;
                    }
                }
            }
            ColumnProbe {
                sources,
                exact,
                leading_packed_var,
            }
        })
        .collect()
}

/// See [`PlannedPredicate::extend`]: eligibility of the bucket-side matcher.
fn extend_probe(pred: &Predicate, probes: &[ColumnProbe]) -> Option<Option<Var>> {
    if pred.args.len() != 1 {
        return None;
    }
    let terms = pred.args[0].terms();
    let sources = probes[0].sources.len();
    if terms.is_empty() || sources > seqdl_core::TRIE_DEPTH {
        return None;
    }
    let flat_column = terms.iter().all(|t| {
        matches!(t, Term::Const(_)) || matches!(t, Term::Var(v) if v.kind == VarKind::Atom)
    });
    if !flat_column {
        return None;
    }
    if sources == terms.len() {
        return Some(None);
    }
    if sources + 1 == terms.len() {
        // The one non-source term can only be an unbound atomic variable
        // (constants and bound variables are always sources), and its first
        // occurrence (an earlier unbound occurrence would have stopped the
        // source walk sooner).
        if let Some(Term::Var(v)) = terms.last() {
            return Some(Some(*v));
        }
    }
    None
}

fn plan_predicate(pred: &Predicate, bound_before: &BTreeSet<Var>) -> PlannedPredicate {
    let probes = column_probes(pred, bound_before);
    let guaranteed: Vec<usize> = probes
        .iter()
        .enumerate()
        .filter(|(_, p)| p.first_value_guaranteed())
        .map(|(c, _)| c)
        .collect();
    PlannedPredicate {
        flat: is_flat(pred),
        extend: extend_probe(pred, &probes),
        pred: pred.clone(),
        probes,
        joint_cols: (guaranteed.len() >= 2).then_some(guaranteed),
    }
}

/// One step of a planned body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlannedLiteral {
    /// Match a positive predicate against the current instance.
    MatchPredicate(PlannedPredicate),
    /// Evaluate a positive equation (one side is guaranteed ground at this point).
    SolveEquation(seqdl_syntax::Equation),
    /// Check a negated predicate (all variables bound).
    CheckNegatedPredicate(seqdl_syntax::Predicate),
    /// Check a negated equation (all variables bound).
    CheckNegatedEquation(seqdl_syntax::Equation),
}

/// A plan: the body literals of a rule in evaluation order.
#[derive(Clone, Debug, Default)]
pub struct BodyPlan {
    /// The ordered steps.
    pub steps: Vec<PlannedLiteral>,
}

impl BodyPlan {
    /// The planned positive predicate at step `index`.
    ///
    /// # Errors
    /// [`EvalError::PlanInvariant`] when the step is missing or is not a positive
    /// predicate match — a malformed plan surfaces as a result, not an abort.
    pub fn predicate_at(&self, index: usize) -> Result<&PlannedPredicate, EvalError> {
        match self.steps.get(index) {
            Some(PlannedLiteral::MatchPredicate(p)) => Ok(p),
            Some(other) => Err(EvalError::PlanInvariant {
                detail: format!("expected a predicate step at position {index}, found {other:?}"),
            }),
            None => Err(EvalError::PlanInvariant {
                detail: format!(
                    "expected a predicate step at position {index}, but the plan has only {} steps",
                    self.steps.len()
                ),
            }),
        }
    }

    /// Positions of the positive-predicate steps that match any of `relations` —
    /// in SCC-scoped semi-naive evaluation, the steps that draw from a delta.
    pub fn delta_positions(&self, relations: &BTreeSet<RelName>) -> Vec<usize> {
        self.steps
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                PlannedLiteral::MatchPredicate(p) if relations.contains(&p.pred.relation) => {
                    Some(i)
                }
                _ => None,
            })
            .collect()
    }

    /// The `(relation, column set)` pairs of every planner-selected joint
    /// index in this plan — what the evaluator registers on the instance
    /// before the fixpoint starts.
    pub fn joint_index_requests(&self) -> impl Iterator<Item = (RelName, &[usize])> + '_ {
        self.steps.iter().filter_map(|s| match s {
            PlannedLiteral::MatchPredicate(p) => {
                p.joint_cols.as_deref().map(|cols| (p.pred.relation, cols))
            }
            _ => None,
        })
    }

    /// The `(relation, column, depth)` trie-deepening requests of this plan:
    /// every column some probe wants indexed beyond the default first-value
    /// depth.
    pub fn column_depth_requests(&self) -> impl Iterator<Item = (RelName, usize, usize)> + '_ {
        self.steps.iter().flat_map(|s| {
            let planned = match s {
                PlannedLiteral::MatchPredicate(p) => Some(p),
                _ => None,
            };
            planned.into_iter().flat_map(|p| {
                p.probes
                    .iter()
                    .enumerate()
                    .filter(|(_, probe)| probe.wanted_depth() >= 2)
                    .map(move |(c, probe)| (p.pred.relation, c, probe.wanted_depth()))
            })
        })
    }
}

/// Plan the body of a rule.
///
/// # Errors
/// [`EvalError::Unplannable`] if some positive equation never acquires a fully
/// bound side; this only happens for unsafe rules.
pub fn plan_rule(rule: &Rule) -> Result<BodyPlan, EvalError> {
    let mut steps = Vec::new();
    let mut bound: BTreeSet<Var> = BTreeSet::new();

    // 1. Positive predicates, in source order.  Each predicate's column probes are
    // computed against the variables bound by *earlier* steps — those are the
    // bindings actually in hand when the predicate is matched.
    for lit in rule.body.iter().filter(|l| l.positive) {
        if let Atom::Pred(p) = &lit.atom {
            let planned = plan_predicate(p, &bound);
            bound.extend(p.vars());
            steps.push(PlannedLiteral::MatchPredicate(planned));
        }
    }

    // 2. Positive equations, each at a point where one side is fully bound.
    let mut pending: Vec<&Literal> = rule
        .body
        .iter()
        .filter(|l| l.positive && l.is_equation())
        .collect();
    while !pending.is_empty() {
        let pick = pending.iter().position(|l| {
            // invariant: `pending` was filtered to equation literals just above.
            let eq = l.atom.as_equation().expect("filtered to equations");
            eq.lhs.vars().iter().all(|v| bound.contains(v))
                || eq.rhs.vars().iter().all(|v| bound.contains(v))
        });
        match pick {
            Some(ix) => {
                let lit = pending.remove(ix);
                // invariant: same filter as above — `pending` holds only equations.
                let eq = lit
                    .atom
                    .as_equation()
                    .expect("filtered to equations")
                    .clone();
                bound.extend(eq.vars());
                steps.push(PlannedLiteral::SolveEquation(eq));
            }
            None => {
                return Err(EvalError::Unplannable {
                    rule: rule.to_string(),
                })
            }
        }
    }

    // 3. Negated literals.
    for lit in rule.body.iter().filter(|l| !l.positive) {
        match &lit.atom {
            Atom::Pred(p) => steps.push(PlannedLiteral::CheckNegatedPredicate(p.clone())),
            Atom::Eq(e) => steps.push(PlannedLiteral::CheckNegatedEquation(e.clone())),
        }
    }

    Ok(BodyPlan { steps })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use seqdl_core::path_of;
    use seqdl_syntax::parse_rule;

    fn probes_of(plan: &BodyPlan) -> Vec<Vec<ColumnProbe>> {
        plan.steps
            .iter()
            .filter_map(|s| match s {
                PlannedLiteral::MatchPredicate(p) => Some(p.probes.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn predicates_come_before_equations_and_negation_last() {
        let rule = parse_rule("S($x) <- a·$x = $x·a, R($x), !B($x).").unwrap();
        let plan = plan_rule(&rule).unwrap();
        assert!(matches!(plan.steps[0], PlannedLiteral::MatchPredicate(_)));
        assert!(matches!(plan.steps[1], PlannedLiteral::SolveEquation(_)));
        assert!(matches!(
            plan.steps[2],
            PlannedLiteral::CheckNegatedPredicate(_)
        ));
    }

    #[test]
    fn chained_equations_are_ordered_by_boundness() {
        // $z = b·$y can only run after $y = $x·a has bound $y.
        let rule = parse_rule("S($z) <- R($x), $z = b·$y, $y = $x·a.").unwrap();
        let plan = plan_rule(&rule).unwrap();
        let equations: Vec<String> = plan
            .steps
            .iter()
            .filter_map(|s| match s {
                PlannedLiteral::SolveEquation(e) => Some(e.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(
            equations,
            vec!["$y = $x·a".to_string(), "$z = b·$y".to_string()]
        );
    }

    #[test]
    fn unsafe_rules_cannot_be_planned() {
        let rule = parse_rule("S($x) <- R($x), $y = $z.").unwrap();
        assert!(matches!(
            plan_rule(&rule),
            Err(EvalError::Unplannable { .. })
        ));
    }

    #[test]
    fn nonequalities_are_planned_as_negated_equations() {
        let rule = parse_rule("S($x) <- R($x·@a·@b), @a != @b.").unwrap();
        let plan = plan_rule(&rule).unwrap();
        assert!(matches!(
            plan.steps.last(),
            Some(PlannedLiteral::CheckNegatedEquation(_))
        ));
    }

    #[test]
    fn bodiless_rules_plan_to_nothing() {
        let rule = parse_rule("T(a).").unwrap();
        assert!(plan_rule(&rule).unwrap().steps.is_empty());
    }

    #[test]
    fn column_probes_reflect_prefixes_and_earlier_bindings() {
        // T comes first, so R's leading @y is bound by the time R is matched;
        // T's own leading @x is not bound before T itself.
        let rule = parse_rule("S(@x·@z) <- T(@x·@y), R(@y·@z).").unwrap();
        let plan = plan_rule(&rule).unwrap();
        let probes = probes_of(&plan);
        assert!(probes[0][0].sources.is_empty());
        assert!(!probes[0][0].can_probe());
        assert_eq!(
            probes[1][0].sources,
            vec![PrefixSource::AtomVar(Var::atom("y"))]
        );
        assert!(probes[1][0].first_value_guaranteed());
        // @z is unbound when R is matched, so the known prefix stops at @y.
        assert!(!probes[1][0].exact);
    }

    #[test]
    fn full_prefixes_accumulate_constants_and_bound_variables() {
        // After S binds @q and @a, D's first column knows the prefix @q·@a·c.
        let rule = parse_rule("T(@q) <- S(@q·@a·$y), D(@q·@a·c·$rest).").unwrap();
        let plan = plan_rule(&rule).unwrap();
        let probes = probes_of(&plan);
        assert_eq!(
            probes[1][0].sources,
            vec![
                PrefixSource::AtomVar(Var::atom("q")),
                PrefixSource::AtomVar(Var::atom("a")),
                PrefixSource::Const(seqdl_core::atom("c")),
            ]
        );
        assert!(!probes[1][0].exact, "trailing $rest is unknown");
    }

    #[test]
    fn constant_empty_packed_and_bound_path_prefixes() {
        let rule = parse_rule("S($p) <- R($p), T(a·$x, eps, <b·c>·d, <$y>·b, $p·e).").unwrap();
        let plan = plan_rule(&rule).unwrap();
        let p = &probes_of(&plan)[1];
        // a·$x: constant prefix, inexact.
        assert_eq!(
            p[0].sources,
            vec![PrefixSource::Const(seqdl_core::atom("a"))]
        );
        assert!(!p[0].exact);
        // eps: no sources, exact — the column is pinned to ε.
        assert!(p[1].sources.is_empty() && p[1].exact && p[1].can_probe());
        // <b·c>·d: a ground packed value then a constant, fully exact.
        assert_eq!(
            p[2].sources,
            vec![
                PrefixSource::Packed(Value::packed(path_of(&["b", "c"]))),
                PrefixSource::Const(seqdl_core::atom("d")),
            ]
        );
        assert!(p[2].exact);
        // <$y>·b: a packed term with variables leads — any-packed probe only.
        assert!(p[3].sources.is_empty() && p[3].leading_packed_var);
        assert!(!p[3].first_value_guaranteed());
        // $p·e with $p bound: a path-variable source (not joint-eligible).
        assert_eq!(
            p[4].sources,
            vec![
                PrefixSource::PathVar(Var::path("p")),
                PrefixSource::Const(seqdl_core::atom("e")),
            ]
        );
        assert!(!p[4].first_value_guaranteed());
    }

    #[test]
    fn joint_columns_are_selected_when_two_first_values_are_guaranteed() {
        // D(@q1, @a, @q2) matched after S bound @q1 and @a: columns 0 and 1
        // have guaranteed first values, @q2 is free.
        let rule = parse_rule("T(@q2) <- S(@q1·@a·$y), D(@q1, @a, @q2).").unwrap();
        let plan = plan_rule(&rule).unwrap();
        let planned = plan.predicate_at(1).unwrap();
        assert_eq!(planned.joint_cols, Some(vec![0, 1]));
        let requests: Vec<_> = plan.joint_index_requests().collect();
        assert_eq!(requests, vec![(seqdl_core::rel("D"), &[0usize, 1][..])]);
        // A single guaranteed column selects no joint index.
        let rule = parse_rule("T(@x) <- S(@x), R(@x, $y).").unwrap();
        let plan = plan_rule(&rule).unwrap();
        assert_eq!(plan.predicate_at(1).unwrap().joint_cols, None);
        assert_eq!(plan.joint_index_requests().count(), 0);
    }

    #[test]
    fn malformed_plan_accesses_surface_as_invariant_errors() {
        let rule = parse_rule("S($x) <- R($x), a·$x = $x·a, !B($x).").unwrap();
        let plan = plan_rule(&rule).unwrap();
        assert!(plan.predicate_at(0).is_ok());
        // Step 1 is an equation, step 2 a negated predicate, step 9 out of range:
        // all are planner invariant errors, not panics.
        for bad in [1usize, 2, 9] {
            match plan.predicate_at(bad) {
                Err(EvalError::PlanInvariant { detail }) => {
                    assert!(detail.contains("predicate step"), "{detail}");
                }
                other => panic!("expected PlanInvariant for step {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn delta_positions_select_recursive_predicates() {
        use std::collections::BTreeSet;
        let rule = parse_rule("T(@x·@z) <- T(@x·@y), R(@y·@z), T(@z·@z).").unwrap();
        let plan = plan_rule(&rule).unwrap();
        let recursive = BTreeSet::from([seqdl_core::rel("T")]);
        assert_eq!(plan.delta_positions(&recursive), vec![0, 2]);
        assert!(plan.delta_positions(&BTreeSet::new()).is_empty());
    }
}
