//! Body planning: ordering the literals of a rule body for evaluation.
//!
//! For a safe rule (Section 2.2) the limited-variable fixpoint guarantees an order
//! in which
//!
//! 1. positive predicates are matched first (binding their variables),
//! 2. each positive equation is evaluated at a point where at least one of its
//!    sides is fully bound (so it can be solved by matching against a ground path),
//! 3. negated predicates and negated equations are checked last, when all their
//!    variables are bound.

use crate::error::EvalError;
use seqdl_core::{AtomId, RelName};
use seqdl_syntax::{Atom, Literal, Predicate, Rule, Term, Var, VarKind};
use std::collections::BTreeSet;

/// How the evaluator can derive a [`seqdl_core::ColKey`] index key for one argument
/// column of a predicate, given the valuation in hand when the predicate is
/// matched.  Derived from the *first term* of the argument expression: whatever
/// that term denotes is a prefix of the column path, so its first value keys the
/// column index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnProbe {
    /// No key is derivable (the argument starts with a variable that is still
    /// unbound when this predicate is matched): scan the relation.
    Scan,
    /// The argument is `ε`: the column must be the empty path.
    Empty,
    /// The argument starts with a constant: the column must start with that atom.
    Const(AtomId),
    /// The argument starts with a packed subexpression: the column must start with
    /// a packed value.
    Packed,
    /// The argument starts with an atomic variable bound by an earlier step; probe
    /// with its runtime binding.
    AtomVar(Var),
    /// The argument starts with a path variable bound by an earlier step; probe
    /// with the first value of its runtime binding (unless bound to `ε`, which
    /// constrains nothing).
    PathVar(Var),
}

/// A positive predicate step: the predicate plus one [`ColumnProbe`] per argument
/// column, precomputed so matching can probe the relation's column index instead of
/// scanning every tuple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedPredicate {
    /// The predicate to match.
    pub pred: Predicate,
    /// Per-column probe strategy (same length as `pred.args`).
    pub probes: Vec<ColumnProbe>,
}

fn column_probes(pred: &Predicate, bound_before: &BTreeSet<Var>) -> Vec<ColumnProbe> {
    pred.args
        .iter()
        .map(|arg| match arg.terms().first() {
            None => ColumnProbe::Empty,
            Some(Term::Const(a)) => ColumnProbe::Const(*a),
            Some(Term::Packed(_)) => ColumnProbe::Packed,
            Some(Term::Var(v)) if bound_before.contains(v) => match v.kind {
                VarKind::Atom => ColumnProbe::AtomVar(*v),
                VarKind::Path => ColumnProbe::PathVar(*v),
            },
            Some(Term::Var(_)) => ColumnProbe::Scan,
        })
        .collect()
}

/// One step of a planned body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlannedLiteral {
    /// Match a positive predicate against the current instance.
    MatchPredicate(PlannedPredicate),
    /// Evaluate a positive equation (one side is guaranteed ground at this point).
    SolveEquation(seqdl_syntax::Equation),
    /// Check a negated predicate (all variables bound).
    CheckNegatedPredicate(seqdl_syntax::Predicate),
    /// Check a negated equation (all variables bound).
    CheckNegatedEquation(seqdl_syntax::Equation),
}

/// A plan: the body literals of a rule in evaluation order.
#[derive(Clone, Debug, Default)]
pub struct BodyPlan {
    /// The ordered steps.
    pub steps: Vec<PlannedLiteral>,
}

impl BodyPlan {
    /// The planned positive predicate at step `index`.
    ///
    /// # Errors
    /// [`EvalError::PlanInvariant`] when the step is missing or is not a positive
    /// predicate match — a malformed plan surfaces as a result, not an abort.
    pub fn predicate_at(&self, index: usize) -> Result<&PlannedPredicate, EvalError> {
        match self.steps.get(index) {
            Some(PlannedLiteral::MatchPredicate(p)) => Ok(p),
            Some(other) => Err(EvalError::PlanInvariant {
                detail: format!("expected a predicate step at position {index}, found {other:?}"),
            }),
            None => Err(EvalError::PlanInvariant {
                detail: format!(
                    "expected a predicate step at position {index}, but the plan has only {} steps",
                    self.steps.len()
                ),
            }),
        }
    }

    /// Positions of the positive-predicate steps that match any of `relations` —
    /// in SCC-scoped semi-naive evaluation, the steps that draw from a delta.
    pub fn delta_positions(&self, relations: &BTreeSet<RelName>) -> Vec<usize> {
        self.steps
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                PlannedLiteral::MatchPredicate(p) if relations.contains(&p.pred.relation) => {
                    Some(i)
                }
                _ => None,
            })
            .collect()
    }
}

/// Plan the body of a rule.
///
/// # Errors
/// [`EvalError::Unplannable`] if some positive equation never acquires a fully
/// bound side; this only happens for unsafe rules.
pub fn plan_rule(rule: &Rule) -> Result<BodyPlan, EvalError> {
    let mut steps = Vec::new();
    let mut bound: BTreeSet<Var> = BTreeSet::new();

    // 1. Positive predicates, in source order.  Each predicate's column probes are
    // computed against the variables bound by *earlier* steps — those are the
    // bindings actually in hand when the predicate is matched.
    for lit in rule.body.iter().filter(|l| l.positive) {
        if let Atom::Pred(p) = &lit.atom {
            let probes = column_probes(p, &bound);
            bound.extend(p.vars());
            steps.push(PlannedLiteral::MatchPredicate(PlannedPredicate {
                pred: p.clone(),
                probes,
            }));
        }
    }

    // 2. Positive equations, each at a point where one side is fully bound.
    let mut pending: Vec<&Literal> = rule
        .body
        .iter()
        .filter(|l| l.positive && l.is_equation())
        .collect();
    while !pending.is_empty() {
        let pick = pending.iter().position(|l| {
            let eq = l.atom.as_equation().expect("filtered to equations");
            eq.lhs.vars().iter().all(|v| bound.contains(v))
                || eq.rhs.vars().iter().all(|v| bound.contains(v))
        });
        match pick {
            Some(ix) => {
                let lit = pending.remove(ix);
                let eq = lit
                    .atom
                    .as_equation()
                    .expect("filtered to equations")
                    .clone();
                bound.extend(eq.vars());
                steps.push(PlannedLiteral::SolveEquation(eq));
            }
            None => {
                return Err(EvalError::Unplannable {
                    rule: rule.to_string(),
                })
            }
        }
    }

    // 3. Negated literals.
    for lit in rule.body.iter().filter(|l| !l.positive) {
        match &lit.atom {
            Atom::Pred(p) => steps.push(PlannedLiteral::CheckNegatedPredicate(p.clone())),
            Atom::Eq(e) => steps.push(PlannedLiteral::CheckNegatedEquation(e.clone())),
        }
    }

    Ok(BodyPlan { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_syntax::parse_rule;

    #[test]
    fn predicates_come_before_equations_and_negation_last() {
        let rule = parse_rule("S($x) <- a·$x = $x·a, R($x), !B($x).").unwrap();
        let plan = plan_rule(&rule).unwrap();
        assert!(matches!(plan.steps[0], PlannedLiteral::MatchPredicate(_)));
        assert!(matches!(plan.steps[1], PlannedLiteral::SolveEquation(_)));
        assert!(matches!(
            plan.steps[2],
            PlannedLiteral::CheckNegatedPredicate(_)
        ));
    }

    #[test]
    fn chained_equations_are_ordered_by_boundness() {
        // $z = b·$y can only run after $y = $x·a has bound $y.
        let rule = parse_rule("S($z) <- R($x), $z = b·$y, $y = $x·a.").unwrap();
        let plan = plan_rule(&rule).unwrap();
        let equations: Vec<String> = plan
            .steps
            .iter()
            .filter_map(|s| match s {
                PlannedLiteral::SolveEquation(e) => Some(e.to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(
            equations,
            vec!["$y = $x·a".to_string(), "$z = b·$y".to_string()]
        );
    }

    #[test]
    fn unsafe_rules_cannot_be_planned() {
        let rule = parse_rule("S($x) <- R($x), $y = $z.").unwrap();
        assert!(matches!(
            plan_rule(&rule),
            Err(EvalError::Unplannable { .. })
        ));
    }

    #[test]
    fn nonequalities_are_planned_as_negated_equations() {
        let rule = parse_rule("S($x) <- R($x·@a·@b), @a != @b.").unwrap();
        let plan = plan_rule(&rule).unwrap();
        assert!(matches!(
            plan.steps.last(),
            Some(PlannedLiteral::CheckNegatedEquation(_))
        ));
    }

    #[test]
    fn bodiless_rules_plan_to_nothing() {
        let rule = parse_rule("T(a).").unwrap();
        assert!(plan_rule(&rule).unwrap().steps.is_empty());
    }

    #[test]
    fn column_probes_reflect_first_terms_and_earlier_bindings() {
        // T comes first, so R's leading @y is bound by the time R is matched;
        // T's own leading @x is not bound before T itself.
        let rule = parse_rule("S(@x·@z) <- T(@x·@y), R(@y·@z).").unwrap();
        let plan = plan_rule(&rule).unwrap();
        let probes: Vec<_> = plan
            .steps
            .iter()
            .filter_map(|s| match s {
                PlannedLiteral::MatchPredicate(p) => Some(p.probes.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(probes[0], vec![ColumnProbe::Scan]);
        assert_eq!(probes[1], vec![ColumnProbe::AtomVar(Var::atom("y"))]);
    }

    #[test]
    fn constant_empty_and_packed_prefixes_probe_statically() {
        let rule = parse_rule("S <- T(a·$x, eps, <$y>·b).").unwrap();
        let plan = plan_rule(&rule).unwrap();
        let p = plan
            .predicate_at(0)
            .expect("step 0 is a positive predicate");
        assert!(matches!(p.probes[0], ColumnProbe::Const(_)));
        assert_eq!(p.probes[1], ColumnProbe::Empty);
        assert_eq!(p.probes[2], ColumnProbe::Packed);
    }

    #[test]
    fn malformed_plan_accesses_surface_as_invariant_errors() {
        let rule = parse_rule("S($x) <- R($x), a·$x = $x·a, !B($x).").unwrap();
        let plan = plan_rule(&rule).unwrap();
        assert!(plan.predicate_at(0).is_ok());
        // Step 1 is an equation, step 2 a negated predicate, step 9 out of range:
        // all are planner invariant errors, not panics.
        for bad in [1usize, 2, 9] {
            match plan.predicate_at(bad) {
                Err(EvalError::PlanInvariant { detail }) => {
                    assert!(detail.contains("predicate step"), "{detail}");
                }
                other => panic!("expected PlanInvariant for step {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn delta_positions_select_recursive_predicates() {
        use std::collections::BTreeSet;
        let rule = parse_rule("T(@x·@z) <- T(@x·@y), R(@y·@z), T(@z·@z).").unwrap();
        let plan = plan_rule(&rule).unwrap();
        let recursive = BTreeSet::from([seqdl_core::rel("T")]);
        assert_eq!(plan.delta_positions(&recursive), vec![0, 2]);
        assert!(plan.delta_positions(&BTreeSet::new()).is_empty());
    }
}
