//! Associative matching of path expressions against ground paths.
//!
//! The central operation of the evaluator: given a path expression `e`, a ground
//! path `p`, and a partial valuation ν, enumerate all extensions ν′ ⊇ ν such that
//! ν′(e) = p.  Because concatenation is associative, an unbound path variable can
//! absorb any contiguous (possibly empty) block of the remaining path, so matching
//! enumerates all decompositions.

use crate::plan::FLAT_MAX_VARS;
use seqdl_core::{Path, PathView, Value};
use seqdl_syntax::{Binding, Equation, PathExpr, Predicate, Term, Valuation, Var, VarKind};

/// Non-backtracking matcher for [flat](crate::plan::PlannedPredicate::flat)
/// predicates: every term is a constant or an atomic variable, so each column
/// either matches its path value-for-value or fails — no decompositions, no
/// continuation chain.  Newly bound variables are recorded in `newly` (the
/// caller pops them after running its continuation); on failure they are
/// already backtracked out.  Returns how many entries of `newly` were used.
pub fn match_predicate_flat(
    args: &[PathExpr],
    tuple: &[Path],
    nu: &mut Valuation,
    newly: &mut [Option<Var>; FLAT_MAX_VARS],
) -> Option<usize> {
    let mut bound = 0usize;
    let mut ok = true;
    'outer: for (arg, path) in args.iter().zip(tuple) {
        let terms = arg.terms();
        let values = path.values();
        if terms.len() != values.len() {
            ok = false;
            break;
        }
        for (term, value) in terms.iter().zip(values) {
            let Value::Atom(b) = value else {
                ok = false;
                break 'outer;
            };
            match term {
                Term::Const(a) => {
                    if a != b {
                        ok = false;
                        break 'outer;
                    }
                }
                Term::Var(v) => match nu.get(*v) {
                    Some(Binding::Atom(bd)) => {
                        if bd != b {
                            ok = false;
                            break 'outer;
                        }
                    }
                    None => {
                        nu.bind_new(*v, Binding::Atom(*b));
                        newly[bound] = Some(*v);
                        bound += 1;
                    }
                    Some(Binding::Path(_)) => {
                        ok = false;
                        break 'outer;
                    }
                },
                Term::Packed(_) => {
                    ok = false;
                    break 'outer;
                }
            }
        }
    }
    if ok {
        Some(bound)
    } else {
        for v in newly[..bound].iter().rev().flatten() {
            nu.pop_binding(*v);
        }
        None
    }
}

/// All extensions of `valuation` that make `expr` denote exactly `path`.
pub fn match_expr(expr: &PathExpr, path: &Path, valuation: &Valuation) -> Vec<Valuation> {
    let mut out = Vec::new();
    let mut scratch = valuation.clone();
    match_terms(
        expr.terms(),
        *path,
        0,
        path.values(),
        &mut scratch,
        &mut |nu| {
            out.push(nu.clone());
        },
    );
    out
}

/// All extensions of `valuation` that make every component expression of `pred`
/// denote the corresponding component path of `tuple`.
///
/// Returns an empty vector if the arities differ.
pub fn match_predicate(pred: &Predicate, tuple: &[Path], valuation: &Valuation) -> Vec<Valuation> {
    let mut out = Vec::new();
    let mut scratch = valuation.clone();
    match_predicate_sink(pred, tuple, &mut scratch, &mut |nu| out.push(nu.clone()));
    out
}

/// Like [`match_predicate`], but hands each matching valuation to `sink` instead
/// of collecting clones.
///
/// This is the fixpoint loop's entry point: matching backtracks on `valuation`
/// itself (which is restored to its original bindings before returning), so a
/// candidate tuple that fails to match allocates nothing.  The valuation passed to
/// `sink` is only valid for the duration of the call (its extra bindings are
/// backtracked away afterwards); `sink` must clone whatever it wants to keep.
/// This lets the final step of a rule body ground the rule head directly, without
/// materialising a valuation per match.
pub fn match_predicate_sink(
    pred: &Predicate,
    tuple: &[Path],
    valuation: &mut Valuation,
    sink: &mut dyn FnMut(&mut Valuation),
) {
    if pred.args.len() != tuple.len() {
        return;
    }
    match_args(&pred.args, tuple, valuation, sink);
}

/// Match the argument expressions column by column, calling `sink` once for every
/// valuation under which all columns match.  `nu` is restored before returning.
fn match_args(
    args: &[PathExpr],
    tuple: &[Path],
    nu: &mut Valuation,
    sink: &mut dyn FnMut(&mut Valuation),
) {
    let Some((arg, rest)) = args.split_first() else {
        sink(nu);
        return;
    };
    // invariant: relation arity equals the argument count — enforced when the
    // program is analysed and when facts are inserted, before matching runs.
    let (path, paths) = tuple.split_first().expect("arity checked by the caller");
    match_terms(arg.terms(), *path, 0, path.values(), nu, &mut |nu| {
        match_args(rest, paths, nu, sink);
    });
}

/// Does the (fully bound) equation hold under `valuation`?  Returns `None` if some
/// variable of the equation is unbound.
pub fn equation_holds(eq: &Equation, valuation: &Valuation) -> Option<bool> {
    let lhs = valuation.apply(&eq.lhs)?;
    let rhs = valuation.apply(&eq.rhs)?;
    Some(lhs == rhs)
}

/// All extensions of `valuation` satisfying the equation, assuming at least one side
/// is fully bound under `valuation` (the planner guarantees this for safe rules).
///
/// Returns `None` if neither side is fully bound.
pub fn match_equation(eq: &Equation, valuation: &Valuation) -> Option<Vec<Valuation>> {
    let lhs_bound = valuation.is_appropriate_for(&eq.lhs);
    let rhs_bound = valuation.is_appropriate_for(&eq.rhs);
    match (lhs_bound, rhs_bound) {
        (true, true) => {
            let holds = equation_holds(eq, valuation).unwrap_or(false);
            Some(if holds {
                vec![valuation.clone()]
            } else {
                Vec::new()
            })
        }
        (true, false) => {
            let ground = valuation.apply(&eq.lhs)?;
            Some(match_expr(&eq.rhs, &ground, valuation))
        }
        (false, true) => {
            let ground = valuation.apply(&eq.rhs)?;
            Some(match_expr(&eq.lhs, &ground, valuation))
        }
        (false, false) => None,
    }
}

/// Match a term sequence against the value suffix `parent.values()[base..]`
/// (passed pre-sliced as `values`), calling `sink` at every complete match.
/// Backtracks on `nu` in place: any binding added during the walk is removed
/// again, so `nu` leaves in the state it entered.  Carrying the parent path's
/// identity lets every path-variable binding resolve through the store's
/// `(id, start, end)` subpath memo — a whole-suffix bind at `base == 0` reuses
/// the parent's id outright, and enumerated prefixes hash three `u32`s instead
/// of their value content.
fn match_terms(
    terms: &[Term],
    parent: Path,
    base: usize,
    values: &'static [Value],
    nu: &mut Valuation,
    sink: &mut dyn FnMut(&mut Valuation),
) {
    let Some((first, rest)) = terms.split_first() else {
        if values.is_empty() {
            sink(nu);
        }
        return;
    };
    match first {
        Term::Const(a) => {
            if let Some(Value::Atom(b)) = values.first() {
                if a == b {
                    match_terms(rest, parent, base + 1, &values[1..], nu, sink);
                }
            }
        }
        Term::Packed(inner) => {
            if let Some(Value::Packed(p)) = values.first() {
                match_terms(inner.terms(), *p, 0, p.values(), nu, &mut |nu| {
                    match_terms(rest, parent, base + 1, &values[1..], nu, sink);
                });
            }
        }
        Term::Var(v) => match v.kind {
            VarKind::Atom => {
                let Some(Value::Atom(b)) = values.first() else {
                    return;
                };
                let b = *b;
                match nu.get(*v) {
                    Some(Binding::Atom(bound)) => {
                        if *bound == b {
                            match_terms(rest, parent, base + 1, &values[1..], nu, sink);
                        }
                    }
                    None => {
                        nu.bind_new(*v, Binding::Atom(b));
                        match_terms(rest, parent, base + 1, &values[1..], nu, sink);
                        nu.pop_binding(*v);
                    }
                    // A binding of the wrong shape cannot occur: `Valuation::bind`
                    // checks it.
                    Some(Binding::Path(_)) => unreachable!("valuation binding of the wrong kind"),
                }
            }
            VarKind::Path => {
                // `None` = unbound; `Some(None)` = bound but mismatching;
                // `Some(Some(n))` = bound to a matching prefix of length n.
                let bound_prefix = match nu.get(*v) {
                    Some(Binding::Path(bound)) => {
                        let n = bound.len();
                        if values.len() >= n && &values[..n] == bound.values() {
                            Some(Some(n))
                        } else {
                            Some(None)
                        }
                    }
                    None => None,
                    Some(Binding::Atom(_)) => unreachable!("valuation binding of the wrong kind"),
                };
                match bound_prefix {
                    Some(Some(n)) => match_terms(rest, parent, base + n, &values[n..], nu, sink),
                    Some(None) => {}
                    None if rest.is_empty() => {
                        // A trailing unbound path variable must absorb everything
                        // that is left; bind it directly instead of enumerating
                        // every prefix only to reject all but the full one.
                        let suffix = PathView::cut(parent, base, base + values.len());
                        nu.bind_new(*v, Binding::Path(suffix));
                        sink(nu);
                        nu.pop_binding(*v);
                    }
                    None => {
                        // Try every prefix (including the empty one), as
                        // unregistered views: a speculative cut rejected by a
                        // later term must not grow the global store.
                        for split in 0..=values.len() {
                            let prefix = PathView::cut(parent, base, base + split);
                            nu.bind_new(*v, Binding::Path(prefix));
                            match_terms(rest, parent, base + split, &values[split..], nu, sink);
                            nu.pop_binding(*v);
                        }
                    }
                }
            }
        },
    }
}

/// Does *some* extension of `valuation` make every component of `pred` denote
/// the corresponding component of `tuple`?  Unlike [`match_predicate`] this
/// decides existence only: the backtracking walk stops at the first complete
/// match instead of enumerating every decomposition, and nothing is cloned or
/// collected.  Answer filters (`seqdl query` matching a goal pattern against a
/// result relation) call this once per tuple.
pub fn predicate_matches(pred: &Predicate, tuple: &[Path], valuation: &Valuation) -> bool {
    if pred.args.len() != tuple.len() {
        return false;
    }
    let mut nu = valuation.clone();
    match_args_find(&pred.args, tuple, &mut nu)
}

fn match_args_find(args: &[PathExpr], tuple: &[Path], nu: &mut Valuation) -> bool {
    let Some((arg, rest)) = args.split_first() else {
        return true;
    };
    // invariant: relation arity equals the argument count — enforced when the
    // program is analysed and when facts are inserted, before matching runs.
    let (path, paths) = tuple.split_first().expect("arity checked by the caller");
    match_terms_find(arg.terms(), *path, 0, path.values(), nu, &mut |nu| {
        match_args_find(rest, paths, nu)
    })
}

/// The short-circuiting twin of [`match_terms`]: `cont` reports whether the
/// rest of the problem succeeded, and the walk returns as soon as any branch
/// does.  `nu` is restored before returning, matched or not.
fn match_terms_find(
    terms: &[Term],
    parent: Path,
    base: usize,
    values: &'static [Value],
    nu: &mut Valuation,
    cont: &mut dyn FnMut(&mut Valuation) -> bool,
) -> bool {
    let Some((first, rest)) = terms.split_first() else {
        return values.is_empty() && cont(nu);
    };
    match first {
        Term::Const(a) => match values.first() {
            Some(Value::Atom(b)) if a == b => {
                match_terms_find(rest, parent, base + 1, &values[1..], nu, cont)
            }
            _ => false,
        },
        Term::Packed(inner) => match values.first() {
            Some(Value::Packed(p)) => {
                match_terms_find(inner.terms(), *p, 0, p.values(), nu, &mut |nu| {
                    match_terms_find(rest, parent, base + 1, &values[1..], nu, &mut *cont)
                })
            }
            _ => false,
        },
        Term::Var(v) => match v.kind {
            VarKind::Atom => {
                let Some(Value::Atom(b)) = values.first() else {
                    return false;
                };
                let b = *b;
                match nu.get(*v) {
                    Some(Binding::Atom(bound)) if *bound == b => {
                        match_terms_find(rest, parent, base + 1, &values[1..], nu, cont)
                    }
                    Some(_) => false,
                    None => {
                        nu.bind_new(*v, Binding::Atom(b));
                        let found =
                            match_terms_find(rest, parent, base + 1, &values[1..], nu, cont);
                        nu.pop_binding(*v);
                        found
                    }
                }
            }
            VarKind::Path => {
                let bound_prefix = match nu.get(*v) {
                    Some(Binding::Path(bound)) => {
                        let n = bound.len();
                        if values.len() >= n && &values[..n] == bound.values() {
                            Some(n)
                        } else {
                            return false;
                        }
                    }
                    None => None,
                    Some(Binding::Atom(_)) => unreachable!("valuation binding of the wrong kind"),
                };
                match bound_prefix {
                    Some(n) => match_terms_find(rest, parent, base + n, &values[n..], nu, cont),
                    None if rest.is_empty() => {
                        let suffix = PathView::cut(parent, base, base + values.len());
                        nu.bind_new(*v, Binding::Path(suffix));
                        let found = cont(nu);
                        nu.pop_binding(*v);
                        found
                    }
                    None => {
                        for split in 0..=values.len() {
                            let prefix = PathView::cut(parent, base, base + split);
                            nu.bind_new(*v, Binding::Path(prefix));
                            let found = match_terms_find(
                                rest,
                                parent,
                                base + split,
                                &values[split..],
                                nu,
                                cont,
                            );
                            nu.pop_binding(*v);
                            if found {
                                return true;
                            }
                        }
                        false
                    }
                }
            }
        },
    }
}

/// In-place matcher for probes the lowering proved *deterministic*: under the
/// binding state the plan guarantees at this step, every tuple admits at most
/// one extension (each argument consumes its path left-to-right with no
/// choice point — constants, atomic variables, bound path variables, and at
/// most one unbound path variable sitting last in its term list).  Bindings
/// are applied directly to `nu`; on a mismatch everything added here is
/// truncated away and the call returns `false`.  On success the bindings stay
/// (the caller backtracks by truncating to its own entry depth), and they are
/// exactly the bindings the general enumerator would have produced for the
/// single extension — in the same order.
pub fn match_predicate_det(pred: &Predicate, tuple: &[Path], nu: &mut Valuation) -> bool {
    let start = nu.len();
    if pred.args.len() != tuple.len() {
        return false;
    }
    for (arg, path) in pred.args.iter().zip(tuple) {
        if !det_terms(arg.terms(), *path, 0, path.values(), nu) {
            nu.truncate(start);
            return false;
        }
    }
    true
}

/// One deterministic left-to-right pass of `terms` over `values` (the suffix
/// of `parent` starting at `base`); binds onto `nu` without backtracking.
fn det_terms(
    terms: &[Term],
    parent: Path,
    mut base: usize,
    mut values: &'static [Value],
    nu: &mut Valuation,
) -> bool {
    let last = terms.len().wrapping_sub(1);
    for (i, term) in terms.iter().enumerate() {
        match term {
            Term::Const(a) => match values.first() {
                Some(Value::Atom(b)) if a == b => {
                    base += 1;
                    values = &values[1..];
                }
                _ => return false,
            },
            Term::Packed(inner) => match values.first() {
                Some(Value::Packed(p)) => {
                    if !det_terms(inner.terms(), *p, 0, p.values(), nu) {
                        return false;
                    }
                    base += 1;
                    values = &values[1..];
                }
                _ => return false,
            },
            Term::Var(v) => match v.kind {
                VarKind::Atom => {
                    let Some(Value::Atom(b)) = values.first() else {
                        return false;
                    };
                    let b = *b;
                    match nu.get(*v) {
                        Some(Binding::Atom(bound)) => {
                            if *bound != b {
                                return false;
                            }
                        }
                        None => nu.bind_new(*v, Binding::Atom(b)),
                        Some(Binding::Path(_)) => {
                            unreachable!("valuation binding of the wrong kind")
                        }
                    }
                    base += 1;
                    values = &values[1..];
                }
                VarKind::Path => match nu.get(*v) {
                    Some(Binding::Path(bound)) => {
                        let n = bound.len();
                        if values.len() < n || &values[..n] != bound.values() {
                            return false;
                        }
                        base += n;
                        values = &values[n..];
                    }
                    None => {
                        debug_assert!(i == last, "det lowering proved the trailing position");
                        let suffix = PathView::cut(parent, base, base + values.len());
                        nu.bind_new(*v, Binding::Path(suffix));
                        base += values.len();
                        values = &values[values.len()..];
                    }
                    Some(Binding::Atom(_)) => unreachable!("valuation binding of the wrong kind"),
                },
            },
        }
    }
    values.is_empty()
}

/// A variable assignment enumerator used by negated-predicate checks: does *some*
/// tuple of `tuples` match `pred` under an extension of `valuation`?
pub fn matches_some_tuple(pred: &Predicate, tuples: &[Vec<Path>], valuation: &Valuation) -> bool {
    tuples.iter().any(|t| predicate_matches(pred, t, valuation))
}

/// Convenience for tests and callers: apply a valuation to a predicate to obtain the
/// corresponding ground tuple, if the valuation is appropriate.
pub fn ground_tuple(pred: &Predicate, valuation: &Valuation) -> Option<Vec<Path>> {
    pred.args.iter().map(|a| valuation.apply(a)).collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use seqdl_core::{atom, path_of, rel, Path};
    use seqdl_syntax::{parse_expr, Predicate, Var};

    fn expr(s: &str) -> PathExpr {
        parse_expr(s).unwrap()
    }

    #[test]
    fn matching_constants_and_atom_variables() {
        let matches = match_expr(
            &expr("a·@x·c"),
            &path_of(&["a", "b", "c"]),
            &Valuation::new(),
        );
        assert_eq!(matches.len(), 1);
        assert_eq!(
            matches[0].get(Var::atom("x")),
            Some(&Binding::Atom(atom("b")))
        );
        // Atom variable cannot absorb two values.
        assert!(
            match_expr(&expr("a·@x"), &path_of(&["a", "b", "c"]), &Valuation::new()).is_empty()
        );
        // Constant mismatch.
        assert!(match_expr(&expr("a·b"), &path_of(&["a", "c"]), &Valuation::new()).is_empty());
    }

    #[test]
    fn unbound_path_variables_enumerate_all_decompositions() {
        // $x·$y against a·b·c: 4 splits (|$x| = 0..3).
        let matches = match_expr(
            &expr("$x·$y"),
            &path_of(&["a", "b", "c"]),
            &Valuation::new(),
        );
        assert_eq!(matches.len(), 4);
        // Each match reassembles to the original path.
        for nu in &matches {
            let x = nu.get(Var::path("x")).unwrap().as_path();
            let y = nu.get(Var::path("y")).unwrap().as_path();
            assert_eq!(x.concat(&y), path_of(&["a", "b", "c"]));
        }
    }

    #[test]
    fn repeated_path_variables_must_agree() {
        // $x·$x against a·b·a·b: only $x = a·b.
        let matches = match_expr(
            &expr("$x·$x"),
            &path_of(&["a", "b", "a", "b"]),
            &Valuation::new(),
        );
        assert_eq!(matches.len(), 1);
        assert_eq!(
            matches[0].get(Var::path("x")),
            Some(&Binding::Path(path_of(&["a", "b"]).into()))
        );
        assert!(match_expr(
            &expr("$x·$x"),
            &path_of(&["a", "b", "a"]),
            &Valuation::new()
        )
        .is_empty());
    }

    #[test]
    fn bound_variables_constrain_the_match() {
        let mut nu = Valuation::new();
        nu.bind_path(Var::path("x"), path_of(&["a"]));
        let matches = match_expr(&expr("$x·$y"), &path_of(&["a", "b"]), &nu);
        assert_eq!(matches.len(), 1);
        assert_eq!(
            matches[0].get(Var::path("y")),
            Some(&Binding::Path(path_of(&["b"]).into()))
        );
        // A conflicting binding yields no matches.
        let mut nu = Valuation::new();
        nu.bind_path(Var::path("x"), path_of(&["c"]));
        assert!(match_expr(&expr("$x·$y"), &path_of(&["a", "b"]), &nu).is_empty());
    }

    #[test]
    fn packing_must_match_packed_values() {
        let packed_path =
            Path::from_values([Value::atom("c"), Value::packed(path_of(&["a", "b"]))]);
        let matches = match_expr(&expr("c·<$s>"), &packed_path, &Valuation::new());
        assert_eq!(matches.len(), 1);
        assert_eq!(
            matches[0].get(Var::path("s")),
            Some(&Binding::Path(path_of(&["a", "b"]).into()))
        );
        // A packed expression never matches an atomic value.
        assert!(match_expr(&expr("<$s>"), &path_of(&["a"]), &Valuation::new()).is_empty());
        // And a path variable *can* match a packed value (it is a value like any
        // other).
        let matches = match_expr(&expr("c·$v"), &packed_path, &Valuation::new());
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn empty_expression_matches_only_the_empty_path() {
        assert_eq!(
            match_expr(&expr("eps"), &Path::empty(), &Valuation::new()).len(),
            1
        );
        assert!(match_expr(&expr("eps"), &path_of(&["a"]), &Valuation::new()).is_empty());
    }

    #[test]
    fn predicate_matching_threads_valuations_across_components() {
        // T($x, $x·a) against (b, b·a) succeeds; against (b, c·a) fails.
        let pred = Predicate::new(rel("T"), vec![expr("$x"), expr("$x·a")]);
        let ok = match_predicate(
            &pred,
            &[path_of(&["b"]), path_of(&["b", "a"])],
            &Valuation::new(),
        );
        assert_eq!(ok.len(), 1);
        let bad = match_predicate(
            &pred,
            &[path_of(&["b"]), path_of(&["c", "a"])],
            &Valuation::new(),
        );
        assert!(bad.is_empty());
        // Arity mismatch never matches.
        assert!(match_predicate(&pred, &[path_of(&["b"])], &Valuation::new()).is_empty());
    }

    #[test]
    fn equation_matching_uses_the_ground_side() {
        // With $x bound, a·$x = $y·a binds $y.
        let eq = Equation::new(expr("a·$x"), expr("$y·a"));
        let mut nu = Valuation::new();
        nu.bind_path(Var::path("x"), path_of(&["a"]));
        let matches = match_equation(&eq, &nu).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(
            matches[0].get(Var::path("y")),
            Some(&Binding::Path(path_of(&["a"]).into()))
        );
        // Fully bound equations are just checked.
        let mut nu2 = matches[0].clone();
        nu2.bind_path(Var::path("z"), Path::empty());
        let eq2 = Equation::new(expr("$x"), expr("$y"));
        assert_eq!(match_equation(&eq2, &nu2).unwrap().len(), 1);
        // Neither side bound: planner error signalled by None.
        assert!(
            match_equation(&Equation::new(expr("$p"), expr("$q")), &Valuation::new()).is_none()
        );
    }

    #[test]
    fn predicate_matches_agrees_with_enumeration() {
        // Same answers as match_predicate on a grab-bag of patterns, without
        // enumerating: repeated variables, packing, constants, arity mismatch.
        let cases: Vec<(Predicate, Vec<Path>)> = vec![
            (
                Predicate::new(rel("T"), vec![expr("$x·$x")]),
                vec![path_of(&["a", "b", "a", "b"])],
            ),
            (
                Predicate::new(rel("T"), vec![expr("$x·$x")]),
                vec![path_of(&["a", "b", "a"])],
            ),
            (
                Predicate::new(rel("T"), vec![expr("$x"), expr("$x·a")]),
                vec![path_of(&["b"]), path_of(&["b", "a"])],
            ),
            (
                Predicate::new(rel("T"), vec![expr("$x"), expr("$x·a")]),
                vec![path_of(&["b"]), path_of(&["c", "a"])],
            ),
            (
                Predicate::new(rel("T"), vec![expr("c·<$s>")]),
                vec![Path::from_values([
                    Value::atom("c"),
                    Value::packed(path_of(&["a", "b"])),
                ])],
            ),
            (
                Predicate::new(rel("T"), vec![expr("a·$x·$y")]),
                vec![path_of(&["a", "b", "c"])],
            ),
            (
                Predicate::new(rel("T"), vec![expr("$x")]),
                vec![path_of(&["a"]), path_of(&["b"])],
            ),
        ];
        for (pred, tuple) in cases {
            assert_eq!(
                predicate_matches(&pred, &tuple, &Valuation::new()),
                !match_predicate(&pred, &tuple, &Valuation::new()).is_empty(),
                "disagreement on {pred} vs {tuple:?}"
            );
        }
        // Bound valuations constrain the existence check too.
        let pred = Predicate::new(rel("T"), vec![expr("$x·$y")]);
        let mut nu = Valuation::new();
        nu.bind_path(Var::path("x"), path_of(&["c"]));
        assert!(!predicate_matches(&pred, &[path_of(&["a", "b"])], &nu));
    }

    #[test]
    fn ground_tuple_and_matches_some_tuple() {
        let pred = Predicate::new(rel("R"), vec![expr("$x·a")]);
        let mut nu = Valuation::new();
        nu.bind_path(Var::path("x"), path_of(&["b"]));
        assert_eq!(ground_tuple(&pred, &nu), Some(vec![path_of(&["b", "a"])]));
        assert_eq!(ground_tuple(&pred, &Valuation::new()), None);

        let tuples = vec![vec![path_of(&["b", "a"])], vec![path_of(&["c"])]];
        assert!(matches_some_tuple(&pred, &tuples, &nu));
        let mut nu_miss = Valuation::new();
        nu_miss.bind_path(Var::path("x"), path_of(&["z"]));
        assert!(!matches_some_tuple(&pred, &tuples, &nu_miss));
    }

    #[test]
    fn only_as_equation_matches_exactly_a_powers() {
        // a·$x = $x·a with $x bound: holds iff $x is all a's.
        let eq = Equation::new(expr("a·$x"), expr("$x·a"));
        for (path, expected) in [
            (seqdl_core::repeat_path("a", 4), true),
            (path_of(&["a", "b", "a"]), false),
            (Path::empty(), true),
        ] {
            let mut nu = Valuation::new();
            nu.bind_path(Var::path("x"), path);
            assert_eq!(equation_holds(&eq, &nu), Some(expected));
        }
    }
}
