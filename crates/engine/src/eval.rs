//! Stratum-by-stratum fixpoint evaluation (Section 2.3).

use crate::error::{EvalError, LimitKind};
use crate::matching::{
    equation_holds, ground_tuple, match_equation, match_predicate_flat, match_predicate_sink,
};
use crate::plan::{
    plan_rule, BodyPlan, ColumnProbe, PlannedLiteral, PlannedPredicate, PrefixSource,
};
use seqdl_core::{
    CancelToken, Fact, Instance, Path, RelName, Relation, TrieEntry, Tuple, Value, TRIE_DEPTH,
};
use seqdl_syntax::{Binding, Program, ProgramInfo, Rule, Valuation};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// Resource limits for evaluation.
///
/// The paper only considers programs that terminate on every instance; these limits
/// make non-termination (Example 2.3) a reportable error instead of a hang.
#[derive(Clone, Copy, Debug)]
pub struct EvalLimits {
    /// Maximum fixpoint iterations per stratum.
    pub max_iterations: usize,
    /// Maximum total number of derived facts.
    pub max_facts: usize,
    /// Maximum length of any derived path.
    pub max_path_len: usize,
    /// Wall-clock deadline for the whole run; `None` disables it.  Exceeding
    /// the deadline surfaces as [`EvalError::Cancelled`] with partial stats,
    /// observed at the next governor checkpoint (stratum boundary, fixpoint
    /// round, or amortised RAM-instruction check).
    pub deadline: Option<Duration>,
    /// Budget on global path-store *growth* (bytes beyond the store's size at
    /// run start); `None` disables it.  Exceeding the budget surfaces as
    /// [`EvalError::LimitExceeded`] with [`LimitKind::StoreBytes`].
    pub max_store_bytes: Option<usize>,
}

impl Default for EvalLimits {
    fn default() -> Self {
        EvalLimits {
            max_iterations: 10_000,
            max_facts: 1_000_000,
            max_path_len: 100_000,
            deadline: None,
            max_store_bytes: None,
        }
    }
}

/// How often the RAM interpreter's instruction loop polls the governor: one
/// cheap flag-plus-deadline check every this many dispatched instructions, so
/// the hot loop stays tight while cancellation latency stays bounded.
pub const GOVERNOR_CHECK_INTERVAL: usize = 4096;

/// The run-scoped resource governor: one per evaluation, shared (by
/// reference) with every fixpoint loop, worker job, and interpreter call of
/// that run.  It folds three concerns into two checkpoint calls:
///
/// * **cancellation** — a caller-held [`CancelToken`] (SIGINT, a poisoning
///   worker panic, an external supervisor);
/// * **deadline** — [`EvalLimits::deadline`] measured from governor creation;
/// * **memory budget** — [`EvalLimits::max_store_bytes`] measured as global
///   path-store growth over the baseline captured at governor creation.
///
/// [`ResourceGovernor::check_fast`] (cancellation + deadline) is cheap enough
/// for the interpreter's amortised instruction checkpoint; the full
/// [`ResourceGovernor::check`] additionally reads the global store statistics
/// and runs at fixpoint-round and stratum boundaries.
#[derive(Debug)]
pub struct ResourceGovernor {
    deadline: Option<(Instant, Duration)>,
    cancel: Option<CancelToken>,
    max_store_bytes: Option<usize>,
    store_baseline: usize,
}

impl ResourceGovernor {
    /// A governor for a run starting now, under `limits`, observing `cancel`
    /// if given.
    pub fn for_run(limits: &EvalLimits, cancel: Option<CancelToken>) -> ResourceGovernor {
        ResourceGovernor {
            deadline: limits.deadline.map(|d| (Instant::now() + d, d)),
            cancel,
            max_store_bytes: limits.max_store_bytes,
            store_baseline: if limits.max_store_bytes.is_some() {
                seqdl_core::store_stats().total_bytes()
            } else {
                0
            },
        }
    }

    /// The cancel token this governor observes, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Cancellation-and-deadline checkpoint — cheap enough for the
    /// interpreter's amortised instruction check.  The
    /// [`EvalError::Cancelled`] it returns carries empty statistics; the
    /// run's entry point attaches the accumulated ones on the way out.
    ///
    /// # Errors
    /// [`EvalError::Cancelled`] when the token is cancelled or the deadline
    /// has passed.
    pub fn check_fast(&self) -> Result<(), EvalError> {
        if let Some(token) = &self.cancel {
            token.checkpoint();
            if token.is_cancelled() {
                return Err(EvalError::Cancelled {
                    reason: token.reason(),
                    partial_stats: Box::default(),
                });
            }
        }
        if let Some((at, limit)) = self.deadline {
            if Instant::now() >= at {
                return Err(EvalError::Cancelled {
                    reason: format!("deadline of {limit:?} exceeded"),
                    partial_stats: Box::default(),
                });
            }
        }
        Ok(())
    }

    /// Full checkpoint: [`ResourceGovernor::check_fast`] plus the store-growth
    /// budget.  Runs at every fixpoint round and stratum boundary.
    ///
    /// # Errors
    /// [`EvalError::Cancelled`] on cancellation or deadline,
    /// [`EvalError::LimitExceeded`] on a blown store budget.
    pub fn check(&self) -> Result<(), EvalError> {
        self.check_fast()?;
        if let Some(budget) = self.max_store_bytes {
            let grown = seqdl_core::store_stats()
                .total_bytes()
                .saturating_sub(self.store_baseline);
            if grown > budget {
                return Err(EvalError::LimitExceeded {
                    what: LimitKind::StoreBytes,
                    limit: budget,
                });
            }
        }
        Ok(())
    }
}

/// Which fixpoint algorithm to use within a stratum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FixpointStrategy {
    /// Re-evaluate every rule against the full instance each iteration.
    Naive,
    /// Semi-naive evaluation: after the first iteration, only rule instantiations
    /// that use at least one fact derived in the previous iteration are considered.
    SemiNaive,
}

/// Counters describing an evaluation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Total fixpoint iterations across all strata.
    pub iterations: usize,
    /// Number of facts derived (beyond the input).
    pub derived_facts: usize,
    /// Number of successful rule firings (head instantiations, counting duplicates).
    pub rule_firings: usize,
    /// Positive-predicate steps answered through an index (prefix trie, ε
    /// bucket, packed bucket, or joint index) instead of a relation scan.
    pub index_probes: usize,
    /// Positive-predicate steps that fell back to scanning the relation (or
    /// its delta window).
    pub scans: usize,
    /// RAM instruction dispatches executed by [`crate::ram::fire_proc`]
    /// (including choice-point resumes and fused-loop candidate advances);
    /// zero when the legacy matcher runs.
    pub instructions_executed: usize,
    /// Executions of instructions the RAM lowering fused: fully-bound
    /// predicate probes compiled to existence-check filters, and terminal
    /// probe+emit loops; zero when the legacy matcher runs.
    pub fused_probes: usize,
    /// Firings whose derived fact was recognised as a duplicate by the
    /// per-rule emit memo (one segment-identity probe instead of grounding
    /// and re-deriving the head tuple).
    pub emit_memo_hits: usize,
    /// High-water mark of shard jobs any single delta window fanned out into
    /// during the *current* stratum; the per-stratum breakdown consumes it
    /// into [`StratumStats::shards`] at each stratum boundary.
    pub delta_shards: usize,
    /// Per-stratum breakdown, one entry per declared stratum, in evaluation order.
    pub strata: Vec<StratumStats>,
    /// Per-rule profile, one entry per (stratum, rule) that fired at least one
    /// pass, in first-fire order.  Populated identically by the sequential
    /// engine and (merged deterministically from shard jobs) the parallel
    /// executor.
    pub rules: Vec<RuleStats>,
}

impl EvalStats {
    /// Fold one rule-firing pass's counters into the run totals.
    pub fn apply_fire(&mut self, fire: FireStats) {
        self.rule_firings += fire.firings;
        self.index_probes += fire.index_probes;
        self.scans += fire.scans;
        self.instructions_executed += fire.instructions;
        self.fused_probes += fire.fused_probes;
        self.emit_memo_hits += fire.emit_memo_hits;
    }

    /// Fold one rule-firing pass into both the run totals and the per-rule
    /// profile entry keyed by `(stratum, rule_ix)`.  `rule` renders the rule
    /// lazily — it is only invoked the first time the entry is created.
    /// `derived` counts the facts the pass buffered (new at emit time; the
    /// merge-time dedup across rules is not attributed back).
    pub fn apply_rule_fire(
        &mut self,
        stratum: usize,
        rule_ix: usize,
        rule: impl FnOnce() -> String,
        fire: FireStats,
        wall: std::time::Duration,
        derived: usize,
    ) {
        self.apply_fire(fire);
        let pos = self
            .rules
            .iter()
            .position(|r| r.stratum == stratum && r.rule_ix == rule_ix);
        let entry = match pos {
            Some(p) => &mut self.rules[p],
            None => {
                self.rules.push(RuleStats {
                    stratum,
                    rule_ix,
                    rule: rule(),
                    ..RuleStats::default()
                });
                self.rules.last_mut().expect("entry just pushed")
            }
        };
        entry.firings += fire.firings;
        entry.derived_facts += derived;
        entry.wall += wall;
        entry.index_probes += fire.index_probes;
        entry.scans += fire.scans;
        entry.instructions += fire.instructions;
        entry.fused_probes += fire.fused_probes;
        entry.emit_memo_hits += fire.emit_memo_hits;
    }

    /// Record that one delta window fanned out into `shards` shard jobs; the
    /// per-stratum maximum lands in [`StratumStats::shards`].
    pub fn note_shards(&mut self, shards: usize) {
        self.delta_shards = self.delta_shards.max(shards);
    }
}

/// Counters produced by one [`fire_rule`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FireStats {
    /// Head instantiations (rule firings, counting duplicates).
    pub firings: usize,
    /// Predicate steps answered through an index probe.
    pub index_probes: usize,
    /// Predicate steps that scanned the relation.
    pub scans: usize,
    /// RAM instruction dispatches (zero on the legacy matcher).
    pub instructions: usize,
    /// Executions of fused instructions (zero on the legacy matcher).
    pub fused_probes: usize,
    /// Firings deduplicated by the emit memo (segment-identity probe hits,
    /// plus duplicates a fused bucket-count loop collapsed without probing).
    pub emit_memo_hits: usize,
}

/// Per-rule profile entry of an evaluation run: one rule's share of the
/// counters in [`EvalStats`], plus where it sits in the stratification.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// Index of the stratum the rule belongs to (in evaluation order).
    pub stratum: usize,
    /// Index of the rule within its stratum's rule list.
    pub rule_ix: usize,
    /// Rendering of the rule.
    pub rule: String,
    /// Head instantiations (counting duplicates).
    pub firings: usize,
    /// Facts the rule's firing passes buffered (new at emit time; cross-rule
    /// duplicates dropped later at the merge point are still counted here).
    pub derived_facts: usize,
    /// Wall-clock time spent in the rule's firing passes.  Under the parallel
    /// executor passes overlap, so rule walls can sum past the stratum wall.
    pub wall: std::time::Duration,
    /// Predicate steps answered through an index probe.
    pub index_probes: usize,
    /// Predicate steps that scanned the relation.
    pub scans: usize,
    /// RAM instruction dispatches (zero on the legacy matcher).
    pub instructions: usize,
    /// Executions of fused instructions (zero on the legacy matcher).
    pub fused_probes: usize,
    /// Firings deduplicated by the emit memo.
    pub emit_memo_hits: usize,
}

/// Counters for one declared stratum of an evaluation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StratumStats {
    /// Number of rules in the stratum.
    pub rules: usize,
    /// Fixpoint iterations (evaluation rounds) spent in the stratum.  A
    /// non-recursive stratum evaluated by the SCC scheduler takes exactly one
    /// round per dependency level; the plain stratum fixpoint takes at least two
    /// (one productive round plus the empty round that detects convergence).
    pub iterations: usize,
    /// Facts derived by the stratum.
    pub derived_facts: usize,
    /// Rule firings (head instantiations, counting duplicates) in the stratum.
    pub rule_firings: usize,
    /// Highest number of shard jobs any single delta window of this stratum
    /// fanned out into (1 when delta variants fired unsharded, 0 when the
    /// stratum never fired a windowed variant) — the audit trail for the
    /// executor's shard-policy clamp at `--threads N`.
    pub shards: usize,
    /// Wall-clock time spent evaluating the stratum.
    pub wall: std::time::Duration,
}

/// A *delta window* restricting one positive-predicate step of a plan: the step at
/// plan position `pos` only draws tuples with ids in `lo..hi`.
///
/// With `lo` the relation's length at the previous iteration boundary and `hi` its
/// current length, this is classic semi-naive evaluation ("at least one fact from
/// the last iteration").  A parallel executor can further split `lo..hi` into
/// disjoint shards and fire the same rule variant concurrently, one window per
/// shard, without the shards overlapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaWindow {
    /// The plan position (index into [`BodyPlan::steps`]) being restricted.
    pub pos: usize,
    /// First tuple id drawn at the restricted position (inclusive).
    pub lo: usize,
    /// Last tuple id drawn at the restricted position (exclusive).
    pub hi: usize,
}

/// The evaluation engine.
#[derive(Clone, Debug)]
pub struct Engine {
    limits: EvalLimits,
    strategy: FixpointStrategy,
    use_ram: bool,
    cancel: Option<CancelToken>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with default limits, semi-naive evaluation, and RAM-lowered
    /// rule execution.
    pub fn new() -> Engine {
        Engine {
            limits: EvalLimits::default(),
            strategy: FixpointStrategy::SemiNaive,
            use_ram: true,
            cancel: None,
        }
    }

    /// Override the resource limits.
    pub fn with_limits(mut self, limits: EvalLimits) -> Engine {
        self.limits = limits;
        self
    }

    /// Override the fixpoint strategy.
    pub fn with_strategy(mut self, strategy: FixpointStrategy) -> Engine {
        self.strategy = strategy;
        self
    }

    /// Enable or disable the RAM lowering (`false` selects the legacy
    /// tree-walking matcher — the `--no-ram` escape hatch used for
    /// differential testing).  Output is identical either way; only the inner
    /// rule-firing machinery changes.
    pub fn with_ram(mut self, use_ram: bool) -> Engine {
        self.use_ram = use_ram;
        self
    }

    /// Whether rules fire through the RAM instruction interpreter.
    pub fn ram_enabled(&self) -> bool {
        self.use_ram
    }

    /// Attach a [`CancelToken`] the engine polls at every governor checkpoint.
    /// Cancelling the token (from any thread, or a signal handler via
    /// [`CancelToken::linked_to`]) makes the run return
    /// [`EvalError::Cancelled`] with the statistics accumulated so far.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Engine {
        self.cancel = Some(token);
        self
    }

    /// The attached cancel token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The configured resource limits.
    pub fn limits(&self) -> EvalLimits {
        self.limits
    }

    /// The configured fixpoint strategy.
    pub fn strategy(&self) -> FixpointStrategy {
        self.strategy
    }

    /// Evaluate `program` on `input`, returning the final instance (input relations
    /// plus all IDB relations).
    ///
    /// # Errors
    /// Ill-formed programs and exceeded resource limits.
    pub fn run(&self, program: &Program, input: &Instance) -> Result<Instance, EvalError> {
        self.run_with_stats(program, input).map(|(i, _)| i)
    }

    /// Like [`Engine::run`], additionally returning evaluation statistics.
    ///
    /// # Errors
    /// Ill-formed programs and exceeded resource limits.
    pub fn run_with_stats(
        &self,
        program: &Program,
        input: &Instance,
    ) -> Result<(Instance, EvalStats), EvalError> {
        self.run_with_stats_seeded(program, input, &[])
    }

    /// Evaluate `program` on `input` with extra `seeds` injected before the
    /// first stratum — the entry point of demand-driven (magic-set) query
    /// evaluation, where the goal's bound arguments become facts of the magic
    /// predicates.  Seeds may populate relations that are IDB in `program`
    /// (which plain inputs must not), since they are demand, not data.
    ///
    /// # Errors
    /// Ill-formed programs, seed arity mismatches, and exceeded resource
    /// limits.
    pub fn run_seeded(
        &self,
        program: &Program,
        input: &Instance,
        seeds: &[Fact],
    ) -> Result<Instance, EvalError> {
        self.run_with_stats_seeded(program, input, seeds)
            .map(|(i, _)| i)
    }

    /// Like [`Engine::run_seeded`], additionally returning evaluation
    /// statistics.
    ///
    /// # Errors
    /// Ill-formed programs, seed arity mismatches, and exceeded resource
    /// limits.
    pub fn run_with_stats_seeded(
        &self,
        program: &Program,
        input: &Instance,
        seeds: &[Fact],
    ) -> Result<(Instance, EvalStats), EvalError> {
        let governor = ResourceGovernor::for_run(&self.limits, self.cancel.clone());
        let mut stats = EvalStats::default();
        match self.run_seeded_inner(program, input, seeds, &governor, &mut stats) {
            Ok(instance) => Ok((instance, stats)),
            Err(e) => Err(e.with_partial_stats(stats)),
        }
    }

    /// The body of [`Engine::run_with_stats_seeded`], with the statistics
    /// owned by the caller so a cancellation can surface them partially
    /// filled.
    fn run_seeded_inner(
        &self,
        program: &Program,
        input: &Instance,
        seeds: &[Fact],
        governor: &ResourceGovernor,
        stats: &mut EvalStats,
    ) -> Result<Instance, EvalError> {
        let info = ProgramInfo::analyse(program)?;
        let mut instance = prepare_idb_instance(&info, input)?;
        seed_instance(&mut instance, seeds)?;
        // Whole-program probe analysis: derived relations keep only the
        // column tries some plan can actually consult.  The same plans are
        // then handed down per stratum, so each rule is planned exactly once
        // per run.
        let mut stratum_plans: Vec<Vec<(&Rule, BodyPlan)>> = program
            .strata
            .iter()
            .map(|s| {
                s.rules
                    .iter()
                    .map(|r| plan_rule(r).map(|p| (r, p)))
                    .collect::<Result<_, _>>()
            })
            .collect::<Result<_, _>>()?;
        restrict_head_indexes(
            info.idb.iter().copied(),
            stratum_plans.iter().flatten().map(|(_, p)| p),
            &mut instance,
        );
        let _run_span = seqdl_trace::span(|| "run".to_string());
        for (si, (stratum, plans)) in program
            .strata
            .iter()
            .zip(stratum_plans.drain(..))
            .enumerate()
        {
            let _stratum_span = seqdl_trace::span(|| format!("stratum {si}"));
            // Stratum-boundary checkpoint (full: includes the store budget).
            seqdl_trace::instant("governor check");
            governor.check()?;
            let start = Instant::now();
            let before = (stats.iterations, stats.derived_facts, stats.rule_firings);
            self.eval_planned_rule_set(
                plans,
                &stratum.head_relations(),
                &mut instance,
                stats,
                governor,
            )?;
            stats.strata.push(StratumStats {
                rules: stratum.rules.len(),
                iterations: stats.iterations - before.0,
                derived_facts: stats.derived_facts - before.1,
                rule_firings: stats.rule_firings - before.2,
                shards: std::mem::take(&mut stats.delta_shards),
                wall: start.elapsed(),
            });
        }
        Ok(instance)
    }

    /// Evaluate a scoped set of rules over `instance`, the engine's inner loop
    /// made reusable for SCC-scoped scheduling (the `seqdl-exec` crate).
    ///
    /// `recursive_over` names the relations whose growth drives the fixpoint —
    /// for plain stratum evaluation the stratum's head relations, for an SCC
    /// scheduler the members of one strongly connected component.  A rule set
    /// that is non-recursive over `recursive_over` converges after its first
    /// productive iteration plus one empty convergence round.
    ///
    /// # Errors
    /// Ill-formed rules and exceeded resource limits.
    pub fn eval_rule_set(
        &self,
        rules: &[&Rule],
        recursive_over: &BTreeSet<RelName>,
        instance: &mut Instance,
        stats: &mut EvalStats,
    ) -> Result<(), EvalError> {
        let governor = ResourceGovernor::for_run(&self.limits, self.cancel.clone());
        self.eval_rule_set_governed(rules, recursive_over, instance, stats, &governor)
    }

    /// [`eval_rule_set`](Engine::eval_rule_set) under a caller-owned
    /// [`ResourceGovernor`] — the parallel executor scopes one governor to a
    /// whole run and shares it across strata (and with its sequential-retry
    /// path), so deadlines and store baselines are measured once per run, not
    /// once per rule set.
    ///
    /// # Errors
    /// Ill-formed rules, exceeded resource limits, and cancellation.
    pub fn eval_rule_set_governed(
        &self,
        rules: &[&Rule],
        recursive_over: &BTreeSet<RelName>,
        instance: &mut Instance,
        stats: &mut EvalStats,
        governor: &ResourceGovernor,
    ) -> Result<(), EvalError> {
        let plans: Vec<(&Rule, BodyPlan)> = rules
            .iter()
            .map(|r| plan_rule(r).map(|p| (*r, p)))
            .collect::<Result<_, _>>()?;
        self.eval_planned_rule_set(plans, recursive_over, instance, stats, governor)
    }

    /// [`eval_rule_set`](Engine::eval_rule_set) for rules already planned by
    /// the caller — the whole-run entry points plan once and share the plans
    /// between index analysis and evaluation.
    fn eval_planned_rule_set(
        &self,
        plans: Vec<(&Rule, BodyPlan)>,
        recursive_over: &BTreeSet<RelName>,
        instance: &mut Instance,
        stats: &mut EvalStats,
        governor: &ResourceGovernor,
    ) -> Result<(), EvalError> {
        if plans.is_empty() {
            return Ok(());
        }
        // Register the planner-selected indexes up front; inserts maintain
        // them incrementally for the rest of the fixpoint.
        register_plan_indexes(plans.iter().map(|(_, p)| p), instance);
        // Lower each planned rule to its RAM procedure once per fixpoint (the
        // plan *moves* into the procedure — no clone); the legacy matcher
        // fires straight off the plans when RAM is disabled.
        let rule_count = plans.len();
        let (procs, plans): (Option<Vec<crate::ram::RuleProc>>, Vec<(&Rule, BodyPlan)>) =
            if self.use_ram {
                let procs = plans
                    .into_iter()
                    .map(|(rule, plan)| crate::ram::lower_rule(rule, plan, recursive_over))
                    .collect();
                (Some(procs), Vec::new())
            } else {
                (None, plans)
            };
        // For semi-naive firing: the plan positions (per rule) that match a
        // relation driving the fixpoint.  Only instantiations using at least
        // one delta fact can be new, so one restricted variant fires per
        // position (precomputed by the lowering on the RAM path).
        let delta_positions: Vec<Vec<usize>> = match &procs {
            Some(procs) => procs.iter().map(|p| p.delta_positions.clone()).collect(),
            None => plans
                .iter()
                .map(|(_, plan)| plan.delta_positions(recursive_over))
                .collect(),
        };

        // Semi-naive delta as *watermarks* into the insertion-ordered store: for
        // each fixpoint-driving relation, the id of the first tuple inserted in
        // the previous iteration.  The delta itself is then a borrowed
        // [`DeltaWindow`] over the relation's id space — no tuples are copied out.
        let mut delta_start: BTreeMap<RelName, usize> = BTreeMap::new();
        // Ordinal of the stratum being evaluated, for the per-rule profile:
        // strata entries are pushed at stratum boundaries, so the entry under
        // construction is the current length.  Holds for the executor's
        // sequential-retry path too (it re-runs the stratum before pushing).
        let stratum_ix = stats.strata.len();
        let mut iteration = 0usize;
        let mut new_facts: Vec<Fact> = Vec::new();
        // One emit memo per rule, persisted across rounds: duplicate
        // derivations in later rounds are recognised in one probe.
        let mut memos: Vec<EmitMemo> = (0..rule_count).map(|_| EmitMemo::new()).collect();
        loop {
            if iteration >= self.limits.max_iterations {
                return Err(EvalError::LimitExceeded {
                    what: LimitKind::Iterations,
                    limit: self.limits.max_iterations,
                });
            }
            stats.iterations += 1;
            let _round_span = seqdl_trace::span(|| format!("round {iteration}"));
            // Fixpoint-round checkpoint (full: includes the store budget).
            seqdl_trace::instant("governor check");
            governor.check()?;
            for (ix, positions) in delta_positions.iter().enumerate() {
                let memo = &mut memos[ix];
                let plan = match &procs {
                    Some(procs) => &procs[ix].plan,
                    None => &plans[ix].1,
                };
                // One dispatch point for both execution paths: the lowered RAM
                // procedure when enabled, the legacy tree-walking matcher
                // otherwise.
                let fire = |window: Option<DeltaWindow>,
                            memo: &mut EmitMemo,
                            out: &mut Vec<Fact>|
                 -> Result<FireStats, EvalError> {
                    match &procs {
                        Some(procs) => crate::ram::fire_proc(
                            &procs[ix],
                            instance,
                            window,
                            memo,
                            out,
                            Some(governor),
                        ),
                        None => {
                            let (rule, plan) = &plans[ix];
                            fire_rule(rule, plan, instance, window, memo, out, Some(governor))
                        }
                    }
                };
                let rule_ref: &Rule = match &procs {
                    Some(procs) => &procs[ix].rule,
                    None => plans[ix].0,
                };
                // One profiled pass: a rule span around the fire, counters
                // into the per-rule profile keyed by (stratum, rule index).
                let profiled = |window: Option<DeltaWindow>,
                                memo: &mut EmitMemo,
                                out: &mut Vec<Fact>,
                                stats: &mut EvalStats|
                 -> Result<(), EvalError> {
                    let _rule_span = seqdl_trace::span(|| format!("rule s{stratum_ix}r{ix}"));
                    let buffered = out.len();
                    let pass_start = Instant::now();
                    let fire_stats = fire(window, memo, out)?;
                    let wall = pass_start.elapsed();
                    if seqdl_trace::enabled() {
                        seqdl_trace::counter("index probes", fire_stats.index_probes as u64);
                        seqdl_trace::counter("scans", fire_stats.scans as u64);
                        seqdl_trace::counter("emits", fire_stats.firings as u64);
                    }
                    stats.apply_rule_fire(
                        stratum_ix,
                        ix,
                        || rule_ref.to_string(),
                        fire_stats,
                        wall,
                        out.len() - buffered,
                    );
                    Ok(())
                };
                if iteration == 0 {
                    profiled(None, memo, &mut new_facts, stats)?;
                    continue;
                }
                match self.strategy {
                    FixpointStrategy::Naive => {
                        profiled(None, memo, &mut new_facts, stats)?;
                    }
                    FixpointStrategy::SemiNaive => {
                        for &pos in positions {
                            let r = plan.predicate_at(pos)?.pred.relation;
                            let hi = instance.relation(r).map_or(0, Relation::len);
                            let lo = delta_start.get(&r).copied().unwrap_or(hi);
                            // An empty delta at the restricted position cannot
                            // contribute a new instantiation; skip the variant
                            // before any earlier step does scan work.
                            if lo >= hi {
                                continue;
                            }
                            // The sequential engine never splits a window.
                            stats.note_shards(1);
                            profiled(
                                Some(DeltaWindow { pos, lo, hi }),
                                memo,
                                &mut new_facts,
                                stats,
                            )?;
                        }
                    }
                }
            }

            // Record the current length of every fixpoint-driving relation — the
            // tuples inserted below land at ids ≥ these marks and form the next
            // delta.
            let marks: BTreeMap<RelName, usize> = recursive_over
                .iter()
                .map(|r| (*r, instance.relation(*r).map_or(0, Relation::len)))
                .collect();

            let grew = self.absorb(instance, &mut new_facts, stats)?;
            if !grew {
                return Ok(());
            }
            delta_start = marks;
            iteration += 1;
        }
    }

    /// Drain `new_facts` into `instance`, enforcing the fact-count and path-length
    /// limits; returns whether the instance grew.  Each fact is *moved* into the
    /// store (no tuple clone), duplicates cost one dedup-map lookup, and the
    /// path-length limit is checked once per genuinely new head tuple — anything
    /// already in the instance passed that check when it was first inserted, so
    /// duplicates are not re-walked.
    ///
    /// This is the single merge point shared by the sequential fixpoint and the
    /// parallel executor (which calls it between rounds, under its write lock).
    ///
    /// # Errors
    /// Arity mismatches and exceeded resource limits.
    pub fn absorb(
        &self,
        instance: &mut Instance,
        new_facts: &mut Vec<Fact>,
        stats: &mut EvalStats,
    ) -> Result<bool, EvalError> {
        let mut grew = false;
        for fact in new_facts.drain(..) {
            let Some(inserted_tuple) = instance.insert_fact_new(fact).map_err(EvalError::Data)?
            else {
                continue;
            };
            if inserted_tuple
                .iter()
                .any(|p| p.len() > self.limits.max_path_len)
            {
                return Err(EvalError::LimitExceeded {
                    what: LimitKind::PathLength,
                    limit: self.limits.max_path_len,
                });
            }
            grew = true;
            stats.derived_facts += 1;
            if stats.derived_facts > self.limits.max_facts {
                return Err(EvalError::LimitExceeded {
                    what: LimitKind::Facts,
                    limit: self.limits.max_facts,
                });
            }
        }
        Ok(grew)
    }
}

/// Insert demand seed facts into a prepared instance.  Seeds bypass the
/// IDB-in-input check of [`prepare_idb_instance`] on purpose: magic predicates
/// are heads of magic rules (IDB), yet their initial demand comes from the
/// goal, not from derivation.
///
/// # Errors
/// [`EvalError::Data`] on arity mismatches between seeds and existing
/// relations.
pub fn seed_instance(instance: &mut Instance, seeds: &[Fact]) -> Result<(), EvalError> {
    for seed in seeds {
        instance
            .insert_fact(seed.clone())
            .map_err(EvalError::Data)?;
    }
    Ok(())
}

/// Clone `input` and register every IDB relation of the program so empty results
/// are observable.  The paper requires IDB relation names to lie outside the input
/// schema Γ; inputs that already populate an IDB relation (or declare it with
/// another arity) are rejected here, which would otherwise surface as a confusing
/// arity error later.
///
/// # Errors
/// [`EvalError::IdbRelationInInput`] on a schema collision.
pub fn prepare_idb_instance(info: &ProgramInfo, input: &Instance) -> Result<Instance, EvalError> {
    let mut instance = input.clone();
    for (rel, arity) in &info.arities {
        if info.idb.contains(rel) {
            if let Some(existing) = input.relation(*rel) {
                if !existing.is_empty() || existing.arity() != *arity {
                    return Err(EvalError::IdbRelationInInput {
                        relation: rel.name().to_string(),
                    });
                }
            }
            instance.declare_relation(*rel, *arity);
        }
    }
    Ok(instance)
}

/// Register every planner-selected index of `plans` on the instance's
/// relations: multi-column join indexes
/// ([`seqdl_core::Relation::ensure_joint_index`]) and deepened column tries
/// ([`seqdl_core::Relation::ensure_column_depth`]).  Call once before a
/// fixpoint: inserts maintain registered indexes, so they stay current for
/// the whole evaluation.
pub fn register_plan_indexes<'a>(
    plans: impl IntoIterator<Item = &'a BodyPlan>,
    instance: &mut Instance,
) {
    for plan in plans {
        for (relation, cols) in plan.joint_index_requests() {
            instance.ensure_joint_index(relation, cols);
        }
        for (relation, column, depth) in plan.column_depth_requests() {
            instance.ensure_column_depth(relation, column, depth);
        }
    }
}

/// Deactivate every column trie of the `heads` relations that no plan in
/// `plans` can ever probe ([`ColumnProbe::can_probe`] is the same static
/// predicate [`choose_candidates`] uses at runtime, so a deactivated column
/// is one the whole evaluation never consults).  Head relations are the
/// growing ones — every insert during the fixpoint pays for exactly the
/// indexes some probe can use, instead of indexing every column by default.
///
/// Restriction is safe even when over-eager: [`choose_candidates`] skips
/// deactivated columns entirely and falls back to scanning, and
/// re-activation (by a later evaluation whose plans do probe the column)
/// rebuilds the trie from the stored tuples.
pub fn restrict_head_indexes<'a>(
    heads: impl IntoIterator<Item = RelName>,
    plans: impl IntoIterator<Item = &'a BodyPlan>,
    instance: &mut Instance,
) {
    let mut needed: seqdl_core::FxMap<RelName, u64> = seqdl_core::FxMap::default();
    for plan in plans {
        for step in &plan.steps {
            if let PlannedLiteral::MatchPredicate(p) = step {
                let mask = needed.entry(p.pred.relation).or_insert(0);
                for (column, probe) in p.probes.iter().enumerate() {
                    if probe.can_probe() && column < u64::BITS as usize {
                        *mask |= 1u64 << column;
                    }
                }
            }
        }
    }
    for head in heads {
        instance.restrict_column_indexes(head, needed.get(&head).copied().unwrap_or(0));
    }
}

/// A per-rule emit-deduplication memo, keyed by the *segment identity* of the
/// grounded head: one interned id per head term (atom binding, path binding,
/// or constant).  A firing whose segment tuple was seen before in this
/// fixpoint is a duplicate derivation — it is counted, but recognised in one
/// hash probe without grounding any path and without touching the relation's
/// dedup index.  Create one per rule and reuse it across rounds.
#[derive(Debug, Default)]
pub struct EmitMemo {
    pub(crate) seen: seqdl_core::FxMap<EmitKey, ()>,
}

impl EmitMemo {
    /// An empty memo.
    pub fn new() -> EmitMemo {
        EmitMemo::default()
    }
}

/// Heads of up to two terms (the overwhelmingly common case) pack the memo
/// key into one `u128`; up to four terms use an inline array; longer heads
/// spill to the heap.  Small keys keep the memo's working set dense — the
/// per-duplicate probe is the hot memory access of a fixpoint.
const EMIT_INLINE: usize = 4;

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) enum EmitKey {
    Packed(u128),
    Inline(u8, [seqdl_core::Segment; EMIT_INLINE]),
    Heap(Box<[seqdl_core::Segment]>),
}

/// A segment as a 40-bit code (8-bit tag + 32-bit id); two fit a `u128` with
/// room to spare, and the tag for "no segment" is 0, so length is implicit.
fn segment_code(seg: seqdl_core::Segment) -> u64 {
    match seg {
        seqdl_core::Segment::Value(Value::Atom(a)) => (1u64 << 32) | u64::from(a.symbol().index()),
        seqdl_core::Segment::Value(Value::Packed(p)) => (2u64 << 32) | u64::from(p.id().index()),
        seqdl_core::Segment::Path(p) => (3u64 << 32) | u64::from(p.index()),
    }
}

impl EmitKey {
    pub(crate) fn from_slice(segs: &[seqdl_core::Segment]) -> EmitKey {
        match segs {
            [] => EmitKey::Packed(0),
            [a] => EmitKey::Packed(u128::from(segment_code(*a))),
            [a, b] => {
                EmitKey::Packed(u128::from(segment_code(*a)) | (u128::from(segment_code(*b)) << 40))
            }
            _ if segs.len() <= EMIT_INLINE => {
                let mut inline =
                    [seqdl_core::Segment::Path(seqdl_core::PathId::EMPTY); EMIT_INLINE];
                inline[..segs.len()].copy_from_slice(segs);
                EmitKey::Inline(segs.len() as u8, inline)
            }
            _ => EmitKey::Heap(segs.into()),
        }
    }
}

/// Evaluate one rule against the instance, appending every derived head fact to
/// `out` and returning the pass's [`FireStats`] (head instantiations plus
/// index-probe/scan counters).  If a [`DeltaWindow`] is given, the predicate
/// at that plan position only draws tuples with ids inside the window — the
/// semi-naive delta restriction, shardable by a parallel executor.
///
/// Evaluation is a fully pipelined depth-first nested-loop join: a single
/// valuation is threaded through every body step by backtracking, and the head
/// is grounded at the innermost level, so no intermediate frontier of
/// valuations is ever materialised.  The function only *reads* `instance`, so
/// independent calls may run concurrently on shared references.  `memo` is
/// the rule's [`EmitMemo`]; passing a fresh one is always correct (it only
/// short-circuits duplicate emissions), reusing one across the rounds of a
/// fixpoint is what makes duplicate-heavy workloads cheap.
///
/// `governor`, when given, is polled once every
/// [`GOVERNOR_CHECK_INTERVAL`] candidate tuples, so a single firing pass over
/// a huge relation still observes deadlines and cancellation.
///
/// # Errors
/// Unsafe rules surface as [`EvalError::Unplannable`]; cancellation as
/// [`EvalError::Cancelled`].
pub fn fire_rule(
    rule: &Rule,
    plan: &BodyPlan,
    instance: &Instance,
    window: Option<DeltaWindow>,
    memo: &mut EmitMemo,
    out: &mut Vec<Fact>,
    governor: Option<&ResourceGovernor>,
) -> Result<FireStats, EvalError> {
    let head = &rule.head;
    // Errors discovered inside the enumeration (an unsafe rule reaching a
    // step with unbound variables) land here; the sink-based matchers have no
    // return channel.  Errors are fatal, so finishing the walk first is fine.
    let err: RefCell<Option<EvalError>> = RefCell::new(None);
    let counters: Cell<FireStats> = Cell::new(FireStats::default());
    let mut firings = 0usize;
    let mut memo_hits = 0usize;
    let mut nu = Valuation::new();
    // Read-only view of the head's relation for emit-time deduplication:
    // firings that re-derive a fact already in the instance are counted but
    // never buffered, so they cost no allocation and no merge work.  `absorb`
    // stays the authority — facts first derived within this same pass are
    // still deduplicated there.
    let head_relation = instance
        .relation(head.relation)
        .filter(|r| r.arity() == head.args.len());
    let term_counts: Vec<usize> = head.args.iter().map(|a| a.terms().len()).collect();
    // Resolve every positive-predicate step's relation once per pass: the
    // instance is frozen for the duration of the call, so per-candidate
    // B-tree lookups are wasted work.
    let step_relations: Vec<Option<&Relation>> = plan
        .steps
        .iter()
        .map(|s| match s {
            PlannedLiteral::MatchPredicate(p) => instance
                .relation(p.pred.relation)
                .filter(|r| r.arity() == p.pred.args.len()),
            _ => None,
        })
        .collect();
    let mut tuple_scratch: Tuple = Vec::with_capacity(head.args.len());
    let mut seg_scratch: Vec<seqdl_core::Segment> = Vec::new();
    let mut emit = |nu: &mut Valuation| {
        seg_scratch.clear();
        for arg in &head.args {
            if nu.segments_into(arg, &mut seg_scratch).is_none() {
                err.borrow_mut()
                    .get_or_insert_with(|| EvalError::Unplannable {
                        rule: rule.to_string(),
                    });
                return;
            }
        }
        firings += 1;
        // One probe on the segment identity answers "derived this before?"
        // without grounding a single path.
        match memo.seen.entry(EmitKey::from_slice(&seg_scratch)) {
            std::collections::hash_map::Entry::Occupied(_) => {
                memo_hits += 1;
                return;
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(());
            }
        }
        tuple_scratch.clear();
        let mut offset = 0usize;
        for &n in &term_counts {
            tuple_scratch.push(Path::from_segments(&seg_scratch[offset..offset + n]));
            offset += n;
        }
        if head_relation.is_some_and(|r| r.contains(&tuple_scratch)) {
            return;
        }
        out.push(Fact::new(head.relation, tuple_scratch.clone()));
    };
    let ticks = Cell::new(0usize);
    eval_steps(
        &plan.steps,
        0,
        instance,
        &step_relations,
        window,
        rule,
        &mut nu,
        &err,
        &counters,
        governor,
        &ticks,
        &mut emit,
    );
    match err.into_inner() {
        Some(e) => Err(e),
        None => {
            let mut stats = counters.get();
            stats.firings = firings;
            stats.emit_memo_hits = memo_hits;
            Ok(stats)
        }
    }
}

/// Run the body steps `steps[0..]` (at absolute plan offset `base_ix`) against
/// `instance` under the partial valuation `nu`, calling `emit` once per valuation
/// that satisfies the whole remaining body.  Backtracks on `nu` in place.
#[allow(clippy::too_many_arguments)]
fn eval_steps(
    steps: &[PlannedLiteral],
    base_ix: usize,
    instance: &Instance,
    step_relations: &[Option<&Relation>],
    window: Option<DeltaWindow>,
    rule: &Rule,
    nu: &mut Valuation,
    err: &RefCell<Option<EvalError>>,
    counters: &Cell<FireStats>,
    governor: Option<&ResourceGovernor>,
    ticks: &Cell<usize>,
    emit: &mut dyn FnMut(&mut Valuation),
) {
    if err.borrow().is_some() {
        return;
    }
    let unplannable = || EvalError::Unplannable {
        rule: rule.to_string(),
    };
    let Some((step, rest)) = steps.split_first() else {
        emit(nu);
        return;
    };
    match step {
        PlannedLiteral::MatchPredicate(planned) => {
            let pred = &planned.pred;
            // An absent or arity-mismatched relation has no matching tuples
            // (pre-resolved once per pass): the positive match fails outright.
            let Some(relation) = step_relations[base_ix] else {
                return;
            };
            // Tuples outside the delta window are excluded at the restricted
            // position; everywhere else the full store is visible.
            let (first_id, last_id) = match window {
                Some(w) if w.pos == base_ix => (w.lo.min(relation.len()), w.hi.min(relation.len())),
                _ => (0, relation.len()),
            };
            let tuples = relation.as_slice();
            let mut cont = |nu: &mut Valuation| {
                // The last body step emits directly — no recursion frame and
                // no re-dispatch for the by far most frequent continuation.
                if rest.is_empty() {
                    if err.borrow().is_none() {
                        emit(nu);
                    }
                    return;
                }
                eval_steps(
                    rest,
                    base_ix + 1,
                    instance,
                    step_relations,
                    window,
                    rule,
                    nu,
                    err,
                    counters,
                    governor,
                    ticks,
                    &mut *emit,
                );
            };
            // Flat predicates (constants and atomic variables only) match in
            // one non-recursive pass with a single continuation call; the
            // general matcher handles everything else.
            let mut handle = |tuple: &seqdl_core::Tuple, nu: &mut Valuation| {
                // An error (including a cancellation recorded below) aborts
                // the walk: remaining candidates fall through cheaply.
                if err.borrow().is_some() {
                    return;
                }
                // Amortised governor checkpoint, one cheap check per
                // GOVERNOR_CHECK_INTERVAL candidate tuples: a firing pass
                // over a huge relation cannot outrun the deadline unobserved.
                let t = ticks.get().wrapping_add(1);
                ticks.set(t);
                if t.is_multiple_of(GOVERNOR_CHECK_INTERVAL) {
                    if let Some(g) = governor {
                        if let Err(e) = g.check_fast() {
                            err.borrow_mut().get_or_insert(e);
                            return;
                        }
                    }
                }
                if planned.flat {
                    let mut newly = [None; crate::plan::FLAT_MAX_VARS];
                    if let Some(n) = match_predicate_flat(&pred.args, tuple, nu, &mut newly) {
                        cont(nu);
                        for v in newly[..n].iter().rev().flatten() {
                            nu.pop_binding(*v);
                        }
                    }
                } else {
                    match_predicate_sink(pred, tuple, nu, &mut cont);
                }
            };
            match choose_candidates(relation, planned, nu) {
                Some(chosen) => {
                    bump(counters, |c| c.index_probes += 1);
                    match chosen.list {
                        CandList::Entries(entries) => {
                            let lo = entries.partition_point(|e| (e.id as usize) < first_id);
                            let hi = entries.partition_point(|e| (e.id as usize) < last_id);
                            let window = &entries[lo..hi];
                            // Bucket-side matching: for unary flat patterns
                            // whose trie bucket consumed the whole resolved
                            // prefix, the entry's length and next-value decide
                            // the match — a sequential walk with no tuple
                            // dereference at all.
                            let bucket_side = planned.extend.filter(|_| {
                                chosen.trie_col == Some((0, planned.probes[0].sources.len()))
                            });
                            match bucket_side {
                                Some(None) => {
                                    let n = planned.probes[0].sources.len() as u32;
                                    for e in window {
                                        if e.len == n {
                                            cont(nu);
                                        }
                                    }
                                }
                                Some(Some(v)) => {
                                    let n = planned.probes[0].sources.len() as u32;
                                    for e in window {
                                        if e.len == n + 1 {
                                            if let Some(b) = e.next_atom() {
                                                nu.bind_new(v, Binding::Atom(b));
                                                cont(nu);
                                                nu.pop_binding(v);
                                            }
                                        }
                                    }
                                }
                                None => {
                                    for e in window {
                                        handle(&tuples[e.id as usize], nu);
                                    }
                                }
                            }
                        }
                        CandList::Ids(ids) => {
                            let lo = ids.partition_point(|&id| (id as usize) < first_id);
                            let hi = ids.partition_point(|&id| (id as usize) < last_id);
                            for &id in &ids[lo..hi] {
                                handle(&tuples[id as usize], nu);
                            }
                        }
                    }
                }
                None => {
                    bump(counters, |c| c.scans += 1);
                    for tuple in &tuples[first_id..last_id] {
                        handle(tuple, nu);
                    }
                }
            }
        }
        PlannedLiteral::SolveEquation(eq) => match match_equation(eq, nu) {
            Some(extensions) => {
                for mut ext in extensions {
                    eval_steps(
                        rest,
                        base_ix + 1,
                        instance,
                        step_relations,
                        window,
                        rule,
                        &mut ext,
                        err,
                        counters,
                        governor,
                        ticks,
                        emit,
                    );
                }
            }
            None => {
                err.borrow_mut().get_or_insert_with(unplannable);
            }
        },
        PlannedLiteral::CheckNegatedPredicate(pred) => {
            let Some(tuple) = ground_tuple(pred, nu) else {
                err.borrow_mut().get_or_insert_with(unplannable);
                return;
            };
            if !instance.contains_fact(&Fact::new(pred.relation, tuple)) {
                eval_steps(
                    rest,
                    base_ix + 1,
                    instance,
                    step_relations,
                    window,
                    rule,
                    nu,
                    err,
                    counters,
                    governor,
                    ticks,
                    emit,
                );
            }
        }
        PlannedLiteral::CheckNegatedEquation(eq) => match equation_holds(eq, nu) {
            Some(false) => eval_steps(
                rest,
                base_ix + 1,
                instance,
                step_relations,
                window,
                rule,
                nu,
                err,
                counters,
                governor,
                ticks,
                emit,
            ),
            Some(true) => {}
            None => {
                err.borrow_mut().get_or_insert_with(unplannable);
            }
        },
    }
}

fn bump(counters: &Cell<FireStats>, f: impl FnOnce(&mut FireStats)) {
    let mut c = counters.get();
    f(&mut c);
    counters.set(c);
}

/// A placeholder for value buffers (never read before being overwritten).
pub(crate) const DUMMY_VALUE: Value = Value::Packed(Path::empty());

/// Joint probes over more columns than this fall back to column probing.
pub(crate) const MAX_JOINT_COLS: usize = 8;

/// An indexed candidate list: trie buckets carry [`TrieEntry`] metadata for
/// bucket-side matching, the other indexes (joint, ε, any-packed) carry bare
/// tuple ids.
#[derive(Clone, Copy)]
pub(crate) enum CandList<'r> {
    Entries(&'r [TrieEntry]),
    Ids(&'r [u32]),
}

impl CandList<'_> {
    fn len(&self) -> usize {
        match self {
            CandList::Entries(e) => e.len(),
            CandList::Ids(i) => i.len(),
        }
    }
}

/// The winning candidate list plus its provenance: `trie_col` is set when the
/// list came from a column trie that consumed the *entire* resolved prefix
/// (column, prefix length) — the precondition for bucket-side matching.
#[derive(Clone, Copy)]
pub(crate) struct Chosen<'r> {
    pub(crate) list: CandList<'r>,
    pub(crate) trie_col: Option<(usize, usize)>,
}

/// Keep `best` the smallest candidate list seen so far.
fn consider<'r>(best: &mut Option<Chosen<'r>>, cand: Chosen<'r>) {
    if best.as_ref().is_none_or(|b| cand.list.len() < b.list.len()) {
        *best = Some(cand);
    }
}

/// The smallest available indexed candidate list for `planned` under `nu`:
/// the joint index (when the planner selected one), each column's resolved
/// prefix through its trie, exact-`ε` buckets, and any-packed buckets all
/// compete, and the shortest list wins.  `None` means no column offers an
/// index at all — scan the relation.
pub(crate) fn choose_candidates<'r>(
    relation: &'r Relation,
    planned: &PlannedPredicate,
    nu: &Valuation,
) -> Option<Chosen<'r>> {
    let mut best: Option<Chosen<'r>> = None;
    if let Some(cols) = planned.joint_cols.as_deref() {
        if cols.len() <= MAX_JOINT_COLS {
            let mut firsts = [DUMMY_VALUE; MAX_JOINT_COLS];
            let mut ok = true;
            for (i, &c) in cols.iter().enumerate() {
                match first_value(&planned.probes[c], nu) {
                    Some(v) => firsts[i] = v,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                if let Some(ids) = relation.probe_joint(cols, &firsts[..cols.len()]) {
                    consider(
                        &mut best,
                        Chosen {
                            list: CandList::Ids(ids),
                            trie_col: None,
                        },
                    );
                }
            }
        }
    }
    let mut buf = [DUMMY_VALUE; TRIE_DEPTH];
    for (column, probe) in planned.probes.iter().enumerate() {
        if !probe.can_probe() || !relation.column_active(column) {
            continue;
        }
        if matches!(&best, Some(b) if b.list.len() == 0) {
            break;
        }
        let (n, complete) = resolve_prefix(probe, nu, &mut buf);
        if n > 0 {
            let full_walk = relation
                .column_index(column)
                .is_some_and(|trie| n <= trie.depth());
            consider(
                &mut best,
                Chosen {
                    list: CandList::Entries(relation.probe_prefix(column, &buf[..n])),
                    trie_col: full_walk.then_some((column, n)),
                },
            );
        } else if complete {
            // Every source resolved to zero values and the sources cover the
            // whole argument: the column must be exactly ε.
            consider(
                &mut best,
                Chosen {
                    list: CandList::Ids(relation.probe_empty(column)),
                    trie_col: None,
                },
            );
        } else if probe.leading_packed_var {
            consider(
                &mut best,
                Chosen {
                    list: CandList::Ids(relation.probe_packed_first(column)),
                    trie_col: None,
                },
            );
        }
    }
    best
}

/// Resolve the statically-known leading values of one column into `buf`,
/// returning how many were filled (capped at [`TRIE_DEPTH`]) and whether the
/// sources were consumed completely (so `probe.exact` still pins the column).
fn resolve_prefix(
    probe: &ColumnProbe,
    nu: &Valuation,
    buf: &mut [Value; TRIE_DEPTH],
) -> (usize, bool) {
    let mut n = 0usize;
    for source in &probe.sources {
        if n == TRIE_DEPTH {
            return (n, false);
        }
        match source {
            PrefixSource::Const(a) => {
                buf[n] = Value::Atom(*a);
                n += 1;
            }
            PrefixSource::Packed(v) => {
                buf[n] = *v;
                n += 1;
            }
            PrefixSource::AtomVar(v) => match nu.get(*v) {
                Some(Binding::Atom(a)) => {
                    buf[n] = Value::Atom(*a);
                    n += 1;
                }
                _ => return (n, false),
            },
            PrefixSource::PathVar(v) => match nu.get(*v) {
                Some(Binding::Path(p)) => {
                    for value in p.values() {
                        if n == TRIE_DEPTH {
                            return (n, false);
                        }
                        buf[n] = *value;
                        n += 1;
                    }
                }
                _ => return (n, false),
            },
        }
    }
    (n, probe.exact)
}

/// The runtime first value of a joint-index column (guaranteed by the planner
/// to resolve; `None` only on a defensive miss, which disables the joint
/// probe for this call).
pub(crate) fn first_value(probe: &ColumnProbe, nu: &Valuation) -> Option<Value> {
    match probe.sources.first()? {
        PrefixSource::Const(a) => Some(Value::Atom(*a)),
        PrefixSource::Packed(v) => Some(*v),
        PrefixSource::AtomVar(v) => match nu.get(*v) {
            Some(Binding::Atom(a)) => Some(Value::Atom(*a)),
            _ => None,
        },
        PrefixSource::PathVar(_) => None,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use seqdl_core::{path_of, rel, repeat_path};
    use seqdl_syntax::parse_program;

    fn engine() -> Engine {
        Engine::new().with_limits(EvalLimits {
            max_iterations: 1000,
            max_facts: 100_000,
            max_path_len: 10_000,
            ..EvalLimits::default()
        })
    }

    #[test]
    fn example_3_1_only_as_with_equation() {
        let program = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        let input = Instance::unary(
            rel("R"),
            [
                repeat_path("a", 4),
                path_of(&["a", "b", "a"]),
                Path::empty(),
            ],
        );
        let out = engine().run(&program, &input).unwrap();
        let s = out.unary_paths(rel("S"));
        assert!(s.contains(&repeat_path("a", 4)));
        assert!(s.contains(&Path::empty()));
        assert!(!s.contains(&path_of(&["a", "b", "a"])));
    }

    #[test]
    fn example_3_1_only_as_with_recursion_matches_equation_variant() {
        let with_eq = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        let with_rec =
            parse_program("T($x, $x) <- R($x).\nT($x, $y) <- T($x, $y·a).\nS($x) <- T($x, eps).")
                .unwrap();
        let input = Instance::unary(
            rel("R"),
            [
                repeat_path("a", 3),
                path_of(&["b"]),
                path_of(&["a", "b"]),
                Path::empty(),
            ],
        );
        let s1 = engine()
            .run(&with_eq, &input)
            .unwrap()
            .unary_paths(rel("S"));
        let s2 = engine()
            .run(&with_rec, &input)
            .unwrap()
            .unary_paths(rel("S"));
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 2);
    }

    #[test]
    fn example_4_3_reversal_with_arity() {
        let program = parse_program(
            "T($x, eps) <- R($x).\nT($x, $y·@u) <- T($x·@u, $y).\nS($x) <- T(eps, $x).",
        )
        .unwrap();
        let input = Instance::unary(rel("R"), [path_of(&["a", "b", "c"])]);
        let out = engine().run(&program, &input).unwrap();
        assert_eq!(
            out.unary_paths(rel("S")),
            BTreeSet::from([path_of(&["c", "b", "a"])])
        );
    }

    #[test]
    fn example_2_1_nfa_acceptance() {
        // NFA over {a, b} accepting strings ending in b: states q0 (initial), q1
        // (final); q0 -a-> q0, q0 -b-> q1, q1 -a-> q0, q1 -b-> q1.
        let program = parse_program(
            "S(@q·$x, eps) <- R($x), N(@q).\n\
             S(@q2·$y, $z·@a) <- S(@q1·@a·$y, $z), D(@q1, @a, @q2).\n\
             A($x) <- S(@q, $x), F(@q).",
        )
        .unwrap();
        let mut input = Instance::new();
        input
            .insert_fact(Fact::new(rel("N"), vec![path_of(&["q0"])]))
            .unwrap();
        input
            .insert_fact(Fact::new(rel("F"), vec![path_of(&["q1"])]))
            .unwrap();
        for (from, sym, to) in [
            ("q0", "a", "q0"),
            ("q0", "b", "q1"),
            ("q1", "a", "q0"),
            ("q1", "b", "q1"),
        ] {
            input
                .insert_fact(Fact::new(
                    rel("D"),
                    vec![path_of(&[from]), path_of(&[sym]), path_of(&[to])],
                ))
                .unwrap();
        }
        for word in [
            vec!["a", "b"],
            vec!["b", "b", "b"],
            vec!["a"],
            vec!["b", "a"],
        ] {
            input
                .insert_fact(Fact::new(rel("R"), vec![path_of(&word)]))
                .unwrap();
        }
        let out = engine().run(&program, &input).unwrap();
        let accepted = out.unary_paths(rel("A"));
        assert!(accepted.contains(&path_of(&["a", "b"])));
        assert!(accepted.contains(&path_of(&["b", "b", "b"])));
        assert!(!accepted.contains(&path_of(&["a"])));
        assert!(!accepted.contains(&path_of(&["b", "a"])));
    }

    #[test]
    fn example_2_2_three_occurrences_boolean_query() {
        let program = parse_program(
            "T($u·<$s>·$v) <- R($u·$s·$v), S($s).\n\
             A <- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.",
        )
        .unwrap();
        // "ab" occurs three times in abxabyab.
        let mut input = Instance::unary(
            rel("R"),
            [path_of(&["a", "b", "x", "a", "b", "y", "a", "b"])],
        );
        input
            .insert_fact(Fact::new(rel("S"), vec![path_of(&["a", "b"])]))
            .unwrap();
        assert!(engine()
            .run(&program, &input)
            .unwrap()
            .nullary_true(rel("A")));

        // Only two occurrences: a·b·x·a·b.
        let mut input2 = Instance::unary(rel("R"), [path_of(&["a", "b", "x", "a", "b"])]);
        input2
            .insert_fact(Fact::new(rel("S"), vec![path_of(&["a", "b"])]))
            .unwrap();
        assert!(!engine()
            .run(&program, &input2)
            .unwrap()
            .nullary_true(rel("A")));
    }

    #[test]
    fn squaring_query_from_theorem_5_3() {
        let program = parse_program(
            "T(eps, $x, $x) <- R($x).\nT($y·$x, $x, $z) <- T($y, $x, a·$z).\nS($y) <- T($y, $x, eps).",
        )
        .unwrap();
        for n in [0usize, 1, 2, 3, 5] {
            let input = Instance::unary(rel("R"), [repeat_path("a", n)]);
            let out = engine().run(&program, &input).unwrap();
            let s = out.unary_paths(rel("S"));
            assert!(
                s.contains(&repeat_path("a", n * n)),
                "a^{} missing from output for n={n}",
                n * n
            );
        }
    }

    #[test]
    fn stratified_negation_only_black_successors() {
        // Section 5.2: nodes whose successors are all black, on graphs encoded as
        // length-2 paths.
        let program =
            parse_program("W(@x) <- R(@x·@y), !B(@y).\n---\nS(@x) <- R(@x·@y), !W(@x).").unwrap();
        let mut input = Instance::new();
        for (a, b) in [("n1", "n2"), ("n1", "n3"), ("n4", "n2")] {
            input
                .insert_fact(Fact::new(rel("R"), vec![path_of(&[a, b])]))
                .unwrap();
        }
        // n2 is black, n3 is not.
        input
            .insert_fact(Fact::new(rel("B"), vec![path_of(&["n2"])]))
            .unwrap();
        let out = engine().run(&program, &input).unwrap();
        let s = out.unary_paths(rel("S"));
        // n4's only successor (n2) is black; n1 has a non-black successor (n3).
        assert!(s.contains(&path_of(&["n4"])));
        assert!(!s.contains(&path_of(&["n1"])));
    }

    #[test]
    fn graph_reachability_in_fragment_i_r() {
        let program =
            parse_program("T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).\nS <- T(a·b).")
                .unwrap();
        let mut chain = Instance::new();
        for (x, y) in [("a", "c"), ("c", "d"), ("d", "b")] {
            chain
                .insert_fact(Fact::new(rel("R"), vec![path_of(&[x, y])]))
                .unwrap();
        }
        assert!(engine()
            .run(&program, &chain)
            .unwrap()
            .nullary_true(rel("S")));

        let mut no_path = Instance::new();
        for (x, y) in [("a", "c"), ("d", "b")] {
            no_path
                .insert_fact(Fact::new(rel("R"), vec![path_of(&[x, y])]))
                .unwrap();
        }
        assert!(!engine()
            .run(&program, &no_path)
            .unwrap()
            .nullary_true(rel("S")));
    }

    #[test]
    fn example_2_3_nonterminating_program_hits_limits() {
        let program = parse_program("T(a).\nT(a·$x) <- T($x).").unwrap();
        let tight = Engine::new().with_limits(EvalLimits {
            max_iterations: 50,
            ..EvalLimits::default()
        });
        let err = tight.run(&program, &Instance::new()).unwrap_err();
        assert!(matches!(err, EvalError::LimitExceeded { .. }));
    }

    #[test]
    fn naive_and_semi_naive_agree() {
        let program = parse_program(
            "T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).\nS($p) <- T($p).",
        )
        .unwrap();
        let mut input = Instance::new();
        for (x, y) in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("b", "e")] {
            input
                .insert_fact(Fact::new(rel("R"), vec![path_of(&[x, y])]))
                .unwrap();
        }
        let naive = engine()
            .with_strategy(FixpointStrategy::Naive)
            .run(&program, &input)
            .unwrap();
        let semi = engine()
            .with_strategy(FixpointStrategy::SemiNaive)
            .run(&program, &input)
            .unwrap();
        assert_eq!(naive.unary_paths(rel("S")), semi.unary_paths(rel("S")));
        assert_eq!(naive.unary_paths(rel("S")).len(), 5 + 4 + 4 + 4 + 3);
    }

    #[test]
    fn eval_rule_set_scopes_the_fixpoint_to_the_given_rules() {
        // Evaluate only the T component of the reachability program: S's rule
        // is excluded, so S is never derived, while T still reaches fixpoint.
        let program = parse_program(
            "T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).\nS($p) <- T($p).",
        )
        .unwrap();
        let rules: Vec<&seqdl_syntax::Rule> = program.strata[0].rules.iter().take(2).collect();
        let mut instance = Instance::new();
        for (x, y) in [("a", "b"), ("b", "c")] {
            instance
                .insert_fact(Fact::new(rel("R"), vec![path_of(&[x, y])]))
                .unwrap();
        }
        let mut stats = EvalStats::default();
        engine()
            .eval_rule_set(
                &rules,
                &BTreeSet::from([rel("T")]),
                &mut instance,
                &mut stats,
            )
            .unwrap();
        assert_eq!(instance.relation(rel("T")).unwrap().len(), 3);
        assert!(instance.relation(rel("S")).is_none());
        assert_eq!(stats.derived_facts, 3);
    }

    #[test]
    fn stats_report_iterations_and_facts() {
        let program = parse_program("S($x) <- R($x).").unwrap();
        let input = Instance::unary(rel("R"), [path_of(&["a"]), path_of(&["b"])]);
        let (_, stats) = engine().run_with_stats(&program, &input).unwrap();
        assert_eq!(stats.derived_facts, 2);
        assert!(stats.iterations >= 1);
        assert_eq!(stats.rule_firings, 2);
    }

    #[test]
    fn empty_idb_relations_are_declared_in_the_output() {
        let program = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        let input = Instance::unary(rel("R"), [path_of(&["b"])]);
        let out = engine().run(&program, &input).unwrap();
        assert!(out.relation(rel("S")).is_some());
        assert!(out.unary_paths(rel("S")).is_empty());
    }

    #[test]
    fn unsafe_programs_are_rejected_before_evaluation() {
        let program = parse_program("S($y) <- R($x).").unwrap();
        assert!(matches!(
            engine().run(&program, &Instance::new()),
            Err(EvalError::IllFormed(_))
        ));
    }

    use seqdl_core::Path;
}
