//! Stratum-by-stratum fixpoint evaluation (Section 2.3).

use crate::error::{EvalError, LimitKind};
use crate::matching::{equation_holds, ground_tuple, match_equation, match_predicate};
use crate::plan::{plan_rule, BodyPlan, PlannedLiteral};
use seqdl_core::{Fact, Instance, RelName, Tuple};
use seqdl_syntax::{Program, ProgramInfo, Rule, Stratum, Valuation};
use std::collections::{BTreeMap, BTreeSet};

/// Resource limits for evaluation.
///
/// The paper only considers programs that terminate on every instance; these limits
/// make non-termination (Example 2.3) a reportable error instead of a hang.
#[derive(Clone, Copy, Debug)]
pub struct EvalLimits {
    /// Maximum fixpoint iterations per stratum.
    pub max_iterations: usize,
    /// Maximum total number of derived facts.
    pub max_facts: usize,
    /// Maximum length of any derived path.
    pub max_path_len: usize,
}

impl Default for EvalLimits {
    fn default() -> Self {
        EvalLimits {
            max_iterations: 10_000,
            max_facts: 1_000_000,
            max_path_len: 100_000,
        }
    }
}

/// Which fixpoint algorithm to use within a stratum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FixpointStrategy {
    /// Re-evaluate every rule against the full instance each iteration.
    Naive,
    /// Semi-naive evaluation: after the first iteration, only rule instantiations
    /// that use at least one fact derived in the previous iteration are considered.
    SemiNaive,
}

/// Counters describing an evaluation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Total fixpoint iterations across all strata.
    pub iterations: usize,
    /// Number of facts derived (beyond the input).
    pub derived_facts: usize,
    /// Number of successful rule firings (head instantiations, counting duplicates).
    pub rule_firings: usize,
}

/// The evaluation engine.
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    limits: EvalLimits,
    strategy: FixpointStrategy,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with default limits and semi-naive evaluation.
    pub fn new() -> Engine {
        Engine {
            limits: EvalLimits::default(),
            strategy: FixpointStrategy::SemiNaive,
        }
    }

    /// Override the resource limits.
    pub fn with_limits(mut self, limits: EvalLimits) -> Engine {
        self.limits = limits;
        self
    }

    /// Override the fixpoint strategy.
    pub fn with_strategy(mut self, strategy: FixpointStrategy) -> Engine {
        self.strategy = strategy;
        self
    }

    /// Evaluate `program` on `input`, returning the final instance (input relations
    /// plus all IDB relations).
    ///
    /// # Errors
    /// Ill-formed programs and exceeded resource limits.
    pub fn run(&self, program: &Program, input: &Instance) -> Result<Instance, EvalError> {
        self.run_with_stats(program, input).map(|(i, _)| i)
    }

    /// Like [`Engine::run`], additionally returning evaluation statistics.
    ///
    /// # Errors
    /// Ill-formed programs and exceeded resource limits.
    pub fn run_with_stats(
        &self,
        program: &Program,
        input: &Instance,
    ) -> Result<(Instance, EvalStats), EvalError> {
        let info = ProgramInfo::analyse(program)?;
        let mut instance = input.clone();
        // Register every IDB relation so empty results are observable.  The paper
        // requires IDB relation names to lie outside the input schema Γ; we reject
        // inputs that already populate an IDB relation (or declare it with another
        // arity), which would otherwise surface as a confusing arity error later.
        for (rel, arity) in &info.arities {
            if info.idb.contains(rel) {
                if let Some(existing) = input.relation(*rel) {
                    if !existing.is_empty() || existing.arity() != *arity {
                        return Err(EvalError::IdbRelationInInput {
                            relation: rel.name().to_string(),
                        });
                    }
                }
                instance.declare_relation(*rel, *arity);
            }
        }
        let mut stats = EvalStats::default();
        for stratum in &program.strata {
            self.eval_stratum(stratum, &mut instance, &mut stats)?;
        }
        Ok((instance, stats))
    }

    fn eval_stratum(
        &self,
        stratum: &Stratum,
        instance: &mut Instance,
        stats: &mut EvalStats,
    ) -> Result<(), EvalError> {
        if stratum.rules.is_empty() {
            return Ok(());
        }
        let stratum_heads: BTreeSet<RelName> = stratum.head_relations();
        let plans: Vec<(Rule, BodyPlan)> = stratum
            .rules
            .iter()
            .map(|r| plan_rule(r).map(|p| (r.clone(), p)))
            .collect::<Result<_, _>>()?;

        // delta = facts of this stratum's head relations derived in the previous
        // iteration.
        let mut delta: BTreeMap<RelName, Vec<Tuple>> = BTreeMap::new();
        let mut iteration = 0usize;
        loop {
            if iteration >= self.limits.max_iterations {
                return Err(EvalError::LimitExceeded {
                    what: LimitKind::Iterations,
                    limit: self.limits.max_iterations,
                });
            }
            stats.iterations += 1;
            let mut new_facts: Vec<Fact> = Vec::new();
            for (rule, plan) in &plans {
                if iteration == 0 {
                    new_facts.extend(self.fire_rule(rule, plan, instance, None, stats)?);
                    continue;
                }
                match self.strategy {
                    FixpointStrategy::Naive => {
                        new_facts.extend(self.fire_rule(rule, plan, instance, None, stats)?);
                    }
                    FixpointStrategy::SemiNaive => {
                        // Only instantiations using at least one delta fact can be
                        // new; fire one variant per recursive predicate position.
                        let recursive_positions: Vec<usize> = plan
                            .steps
                            .iter()
                            .enumerate()
                            .filter_map(|(i, s)| match s {
                                PlannedLiteral::MatchPredicate(p)
                                    if stratum_heads.contains(&p.relation) =>
                                {
                                    Some(i)
                                }
                                _ => None,
                            })
                            .collect();
                        for pos in recursive_positions {
                            new_facts.extend(self.fire_rule(
                                rule,
                                plan,
                                instance,
                                Some((pos, &delta)),
                                stats,
                            )?);
                        }
                    }
                }
            }

            // Insert genuinely new facts and build the next delta.
            let mut next_delta: BTreeMap<RelName, Vec<Tuple>> = BTreeMap::new();
            for fact in new_facts {
                for path in &fact.tuple {
                    if path.len() > self.limits.max_path_len {
                        return Err(EvalError::LimitExceeded {
                            what: LimitKind::PathLength,
                            limit: self.limits.max_path_len,
                        });
                    }
                }
                let relation = fact.relation;
                let tuple = fact.tuple.clone();
                let inserted = instance.insert_fact(fact).map_err(EvalError::Data)?;
                if inserted {
                    stats.derived_facts += 1;
                    if stats.derived_facts > self.limits.max_facts {
                        return Err(EvalError::LimitExceeded {
                            what: LimitKind::Facts,
                            limit: self.limits.max_facts,
                        });
                    }
                    next_delta.entry(relation).or_default().push(tuple);
                }
            }

            if next_delta.is_empty() {
                return Ok(());
            }
            delta = next_delta;
            iteration += 1;
        }
    }

    /// Evaluate one rule against the instance.  If `restrict` is given, the
    /// predicate at that plan position draws its tuples from the delta instead of
    /// the full instance.
    fn fire_rule(
        &self,
        rule: &Rule,
        plan: &BodyPlan,
        instance: &Instance,
        restrict: Option<(usize, &BTreeMap<RelName, Vec<Tuple>>)>,
        stats: &mut EvalStats,
    ) -> Result<Vec<Fact>, EvalError> {
        let mut frontier = vec![Valuation::new()];
        for (ix, step) in plan.steps.iter().enumerate() {
            if frontier.is_empty() {
                return Ok(Vec::new());
            }
            let mut next = Vec::new();
            match step {
                PlannedLiteral::MatchPredicate(pred) => {
                    let restricted_here = restrict.as_ref().is_some_and(|(pos, _)| *pos == ix);
                    let tuples: Vec<Tuple> = if restricted_here {
                        let (_, delta) = restrict.as_ref().expect("checked above");
                        delta.get(&pred.relation).cloned().unwrap_or_default()
                    } else {
                        instance
                            .relation(pred.relation)
                            .map(|r| r.tuples())
                            .unwrap_or_default()
                    };
                    for nu in &frontier {
                        for tuple in &tuples {
                            next.extend(match_predicate(pred, tuple, nu));
                        }
                    }
                }
                PlannedLiteral::SolveEquation(eq) => {
                    for nu in &frontier {
                        match match_equation(eq, nu) {
                            Some(extensions) => next.extend(extensions),
                            None => {
                                return Err(EvalError::Unplannable {
                                    rule: rule.to_string(),
                                })
                            }
                        }
                    }
                }
                PlannedLiteral::CheckNegatedPredicate(pred) => {
                    for nu in &frontier {
                        let Some(tuple) = ground_tuple(pred, nu) else {
                            return Err(EvalError::Unplannable {
                                rule: rule.to_string(),
                            });
                        };
                        let present = instance.contains_fact(&Fact::new(pred.relation, tuple));
                        if !present {
                            next.push(nu.clone());
                        }
                    }
                }
                PlannedLiteral::CheckNegatedEquation(eq) => {
                    for nu in &frontier {
                        match equation_holds(eq, nu) {
                            Some(false) => next.push(nu.clone()),
                            Some(true) => {}
                            None => {
                                return Err(EvalError::Unplannable {
                                    rule: rule.to_string(),
                                })
                            }
                        }
                    }
                }
            }
            frontier = next;
        }

        let mut out = Vec::new();
        for nu in &frontier {
            let Some(tuple) = ground_tuple(&rule.head, nu) else {
                return Err(EvalError::Unplannable {
                    rule: rule.to_string(),
                });
            };
            stats.rule_firings += 1;
            out.push(Fact::new(rule.head.relation, tuple));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::{path_of, rel, repeat_path};
    use seqdl_syntax::parse_program;

    fn engine() -> Engine {
        Engine::new().with_limits(EvalLimits {
            max_iterations: 1000,
            max_facts: 100_000,
            max_path_len: 10_000,
        })
    }

    #[test]
    fn example_3_1_only_as_with_equation() {
        let program = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        let input = Instance::unary(
            rel("R"),
            [
                repeat_path("a", 4),
                path_of(&["a", "b", "a"]),
                Path::empty(),
            ],
        );
        let out = engine().run(&program, &input).unwrap();
        let s = out.unary_paths(rel("S"));
        assert!(s.contains(&repeat_path("a", 4)));
        assert!(s.contains(&Path::empty()));
        assert!(!s.contains(&path_of(&["a", "b", "a"])));
    }

    #[test]
    fn example_3_1_only_as_with_recursion_matches_equation_variant() {
        let with_eq = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        let with_rec =
            parse_program("T($x, $x) <- R($x).\nT($x, $y) <- T($x, $y·a).\nS($x) <- T($x, eps).")
                .unwrap();
        let input = Instance::unary(
            rel("R"),
            [
                repeat_path("a", 3),
                path_of(&["b"]),
                path_of(&["a", "b"]),
                Path::empty(),
            ],
        );
        let s1 = engine()
            .run(&with_eq, &input)
            .unwrap()
            .unary_paths(rel("S"));
        let s2 = engine()
            .run(&with_rec, &input)
            .unwrap()
            .unary_paths(rel("S"));
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 2);
    }

    #[test]
    fn example_4_3_reversal_with_arity() {
        let program = parse_program(
            "T($x, eps) <- R($x).\nT($x, $y·@u) <- T($x·@u, $y).\nS($x) <- T(eps, $x).",
        )
        .unwrap();
        let input = Instance::unary(rel("R"), [path_of(&["a", "b", "c"])]);
        let out = engine().run(&program, &input).unwrap();
        assert_eq!(
            out.unary_paths(rel("S")),
            BTreeSet::from([path_of(&["c", "b", "a"])])
        );
    }

    #[test]
    fn example_2_1_nfa_acceptance() {
        // NFA over {a, b} accepting strings ending in b: states q0 (initial), q1
        // (final); q0 -a-> q0, q0 -b-> q1, q1 -a-> q0, q1 -b-> q1.
        let program = parse_program(
            "S(@q·$x, eps) <- R($x), N(@q).\n\
             S(@q2·$y, $z·@a) <- S(@q1·@a·$y, $z), D(@q1, @a, @q2).\n\
             A($x) <- S(@q, $x), F(@q).",
        )
        .unwrap();
        let mut input = Instance::new();
        input
            .insert_fact(Fact::new(rel("N"), vec![path_of(&["q0"])]))
            .unwrap();
        input
            .insert_fact(Fact::new(rel("F"), vec![path_of(&["q1"])]))
            .unwrap();
        for (from, sym, to) in [
            ("q0", "a", "q0"),
            ("q0", "b", "q1"),
            ("q1", "a", "q0"),
            ("q1", "b", "q1"),
        ] {
            input
                .insert_fact(Fact::new(
                    rel("D"),
                    vec![path_of(&[from]), path_of(&[sym]), path_of(&[to])],
                ))
                .unwrap();
        }
        for word in [
            vec!["a", "b"],
            vec!["b", "b", "b"],
            vec!["a"],
            vec!["b", "a"],
        ] {
            input
                .insert_fact(Fact::new(rel("R"), vec![path_of(&word)]))
                .unwrap();
        }
        let out = engine().run(&program, &input).unwrap();
        let accepted = out.unary_paths(rel("A"));
        assert!(accepted.contains(&path_of(&["a", "b"])));
        assert!(accepted.contains(&path_of(&["b", "b", "b"])));
        assert!(!accepted.contains(&path_of(&["a"])));
        assert!(!accepted.contains(&path_of(&["b", "a"])));
    }

    #[test]
    fn example_2_2_three_occurrences_boolean_query() {
        let program = parse_program(
            "T($u·<$s>·$v) <- R($u·$s·$v), S($s).\n\
             A <- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.",
        )
        .unwrap();
        // "ab" occurs three times in abxabyab.
        let mut input = Instance::unary(
            rel("R"),
            [path_of(&["a", "b", "x", "a", "b", "y", "a", "b"])],
        );
        input
            .insert_fact(Fact::new(rel("S"), vec![path_of(&["a", "b"])]))
            .unwrap();
        assert!(engine()
            .run(&program, &input)
            .unwrap()
            .nullary_true(rel("A")));

        // Only two occurrences: a·b·x·a·b.
        let mut input2 = Instance::unary(rel("R"), [path_of(&["a", "b", "x", "a", "b"])]);
        input2
            .insert_fact(Fact::new(rel("S"), vec![path_of(&["a", "b"])]))
            .unwrap();
        assert!(!engine()
            .run(&program, &input2)
            .unwrap()
            .nullary_true(rel("A")));
    }

    #[test]
    fn squaring_query_from_theorem_5_3() {
        let program = parse_program(
            "T(eps, $x, $x) <- R($x).\nT($y·$x, $x, $z) <- T($y, $x, a·$z).\nS($y) <- T($y, $x, eps).",
        )
        .unwrap();
        for n in [0usize, 1, 2, 3, 5] {
            let input = Instance::unary(rel("R"), [repeat_path("a", n)]);
            let out = engine().run(&program, &input).unwrap();
            let s = out.unary_paths(rel("S"));
            assert!(
                s.contains(&repeat_path("a", n * n)),
                "a^{} missing from output for n={n}",
                n * n
            );
        }
    }

    #[test]
    fn stratified_negation_only_black_successors() {
        // Section 5.2: nodes whose successors are all black, on graphs encoded as
        // length-2 paths.
        let program =
            parse_program("W(@x) <- R(@x·@y), !B(@y).\n---\nS(@x) <- R(@x·@y), !W(@x).").unwrap();
        let mut input = Instance::new();
        for (a, b) in [("n1", "n2"), ("n1", "n3"), ("n4", "n2")] {
            input
                .insert_fact(Fact::new(rel("R"), vec![path_of(&[a, b])]))
                .unwrap();
        }
        // n2 is black, n3 is not.
        input
            .insert_fact(Fact::new(rel("B"), vec![path_of(&["n2"])]))
            .unwrap();
        let out = engine().run(&program, &input).unwrap();
        let s = out.unary_paths(rel("S"));
        // n4's only successor (n2) is black; n1 has a non-black successor (n3).
        assert!(s.contains(&path_of(&["n4"])));
        assert!(!s.contains(&path_of(&["n1"])));
    }

    #[test]
    fn graph_reachability_in_fragment_i_r() {
        let program =
            parse_program("T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).\nS <- T(a·b).")
                .unwrap();
        let mut chain = Instance::new();
        for (x, y) in [("a", "c"), ("c", "d"), ("d", "b")] {
            chain
                .insert_fact(Fact::new(rel("R"), vec![path_of(&[x, y])]))
                .unwrap();
        }
        assert!(engine()
            .run(&program, &chain)
            .unwrap()
            .nullary_true(rel("S")));

        let mut no_path = Instance::new();
        for (x, y) in [("a", "c"), ("d", "b")] {
            no_path
                .insert_fact(Fact::new(rel("R"), vec![path_of(&[x, y])]))
                .unwrap();
        }
        assert!(!engine()
            .run(&program, &no_path)
            .unwrap()
            .nullary_true(rel("S")));
    }

    #[test]
    fn example_2_3_nonterminating_program_hits_limits() {
        let program = parse_program("T(a).\nT(a·$x) <- T($x).").unwrap();
        let tight = Engine::new().with_limits(EvalLimits {
            max_iterations: 50,
            max_facts: 100_000,
            max_path_len: 100_000,
        });
        let err = tight.run(&program, &Instance::new()).unwrap_err();
        assert!(matches!(err, EvalError::LimitExceeded { .. }));
    }

    #[test]
    fn naive_and_semi_naive_agree() {
        let program = parse_program(
            "T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).\nS($p) <- T($p).",
        )
        .unwrap();
        let mut input = Instance::new();
        for (x, y) in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("b", "e")] {
            input
                .insert_fact(Fact::new(rel("R"), vec![path_of(&[x, y])]))
                .unwrap();
        }
        let naive = engine()
            .with_strategy(FixpointStrategy::Naive)
            .run(&program, &input)
            .unwrap();
        let semi = engine()
            .with_strategy(FixpointStrategy::SemiNaive)
            .run(&program, &input)
            .unwrap();
        assert_eq!(naive.unary_paths(rel("S")), semi.unary_paths(rel("S")));
        assert_eq!(naive.unary_paths(rel("S")).len(), 5 + 4 + 4 + 4 + 3);
    }

    #[test]
    fn stats_report_iterations_and_facts() {
        let program = parse_program("S($x) <- R($x).").unwrap();
        let input = Instance::unary(rel("R"), [path_of(&["a"]), path_of(&["b"])]);
        let (_, stats) = engine().run_with_stats(&program, &input).unwrap();
        assert_eq!(stats.derived_facts, 2);
        assert!(stats.iterations >= 1);
        assert_eq!(stats.rule_firings, 2);
    }

    #[test]
    fn empty_idb_relations_are_declared_in_the_output() {
        let program = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        let input = Instance::unary(rel("R"), [path_of(&["b"])]);
        let out = engine().run(&program, &input).unwrap();
        assert!(out.relation(rel("S")).is_some());
        assert!(out.unary_paths(rel("S")).is_empty());
    }

    #[test]
    fn unsafe_programs_are_rejected_before_evaluation() {
        let program = parse_program("S($y) <- R($x).").unwrap();
        assert!(matches!(
            engine().run(&program, &Instance::new()),
            Err(EvalError::IllFormed(_))
        ));
    }

    use seqdl_core::Path;
}
