//! Machine-readable rendering of evaluation statistics.
//!
//! [`stats_json`] serializes an [`EvalStats`] (totals, per-stratum breakdown,
//! per-rule profile), a [`seqdl_core::StoreStats`] snapshot, and the run's
//! outcome as one JSON document — the stable contract behind
//! `seqdl run|query --stats-format json` and the bench harness's JSON mode,
//! so tooling consumes structured numbers instead of scraping `--stats` text.
//!
//! The document is hand-rolled (no serde in this workspace); the schema is
//! versioned through the top-level `"version"` field and validated by
//! `crates/bench/tests/stats_json_schema.rs`:
//!
//! ```json
//! {
//!   "version": 1,
//!   "outcome": {"status": "ok"},
//!   "totals": {"iterations": 3, "derived_facts": 10, "rule_firings": 12,
//!              "index_probes": 9, "scans": 2, "instructions_executed": 40,
//!              "fused_probes": 5, "emit_memo_hits": 2},
//!   "strata": [{"rules": 2, "iterations": 3, "derived_facts": 10,
//!               "rule_firings": 12, "shards": 1, "wall_us": 120,
//!               "wall_pct": 100.00}],
//!   "rules": [{"stratum": 0, "index": 0, "rule": "T($x) <- E($x).",
//!              "firings": 4, "derived_facts": 4, "wall_us": 60,
//!              "index_probes": 3, "scans": 1, "instructions": 20,
//!              "fused_probes": 2, "emit_memo_hits": 0}],
//!   "store": {"distinct_paths": 40, "bytes": 4096}
//! }
//! ```
//!
//! `outcome.status` is `"ok"`, `"cancelled"` (with `"reason"`), `"limit"`
//! (with `"kind"` ∈ {`iterations`, `facts`, `path_length`, `store_bytes`} and
//! `"limit"`), or `"error"` (with `"detail"`); on non-ok outcomes the counters
//! are the partial statistics accumulated up to the failure point, when the
//! error carries them.

use crate::error::{EvalError, LimitKind};
use crate::eval::EvalStats;
use seqdl_core::StoreStats;
use seqdl_trace::json_escape;
use std::fmt::Write as _;

/// Stable machine-readable token for a [`LimitKind`] (the `Display` form is
/// prose for humans).
fn limit_token(kind: LimitKind) -> &'static str {
    match kind {
        LimitKind::Iterations => "iterations",
        LimitKind::Facts => "facts",
        LimitKind::PathLength => "path_length",
        LimitKind::StoreBytes => "store_bytes",
    }
}

fn outcome_json(error: Option<&EvalError>) -> String {
    match error {
        None => "{\"status\":\"ok\"}".to_string(),
        Some(EvalError::Cancelled { reason, .. }) => {
            format!(
                "{{\"status\":\"cancelled\",\"reason\":\"{}\"}}",
                json_escape(reason)
            )
        }
        Some(EvalError::LimitExceeded { what, limit }) => format!(
            "{{\"status\":\"limit\",\"kind\":\"{}\",\"limit\":{limit}}}",
            limit_token(*what)
        ),
        Some(other) => {
            format!(
                "{{\"status\":\"error\",\"detail\":\"{}\"}}",
                json_escape(&other.to_string())
            )
        }
    }
}

fn wall_us(wall: std::time::Duration) -> u64 {
    u64::try_from(wall.as_micros()).unwrap_or(u64::MAX)
}

/// Percentage of `part` within `total`, with an empty total reading as 0%.
pub(crate) fn wall_pct(part: std::time::Duration, total: std::time::Duration) -> f64 {
    if total.is_zero() {
        0.0
    } else {
        part.as_secs_f64() / total.as_secs_f64() * 100.0
    }
}

/// Serialize `stats`, a path-store snapshot, and the run outcome as the JSON
/// document described in the [module docs](self).  Pass the error of a failed
/// run (its partial statistics, if any, should already be in `stats`) or
/// `None` for a completed one.
#[must_use]
pub fn stats_json(stats: &EvalStats, store: &StoreStats, error: Option<&EvalError>) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"version\": 1,");
    let _ = writeln!(out, "  \"outcome\": {},", outcome_json(error));
    let _ = writeln!(
        out,
        "  \"totals\": {{\"iterations\": {}, \"derived_facts\": {}, \"rule_firings\": {}, \
         \"index_probes\": {}, \"scans\": {}, \"instructions_executed\": {}, \
         \"fused_probes\": {}, \"emit_memo_hits\": {}}},",
        stats.iterations,
        stats.derived_facts,
        stats.rule_firings,
        stats.index_probes,
        stats.scans,
        stats.instructions_executed,
        stats.fused_probes,
        stats.emit_memo_hits,
    );
    let total_wall: std::time::Duration = stats.strata.iter().map(|s| s.wall).sum();
    out.push_str("  \"strata\": [");
    for (i, s) in stats.strata.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"rules\": {}, \"iterations\": {}, \"derived_facts\": {}, \
             \"rule_firings\": {}, \"shards\": {}, \"wall_us\": {}, \"wall_pct\": {:.2}}}",
            if i == 0 { "" } else { "," },
            s.rules,
            s.iterations,
            s.derived_facts,
            s.rule_firings,
            s.shards,
            wall_us(s.wall),
            wall_pct(s.wall, total_wall),
        );
    }
    out.push_str("\n  ],\n");
    out.push_str("  \"rules\": [");
    for (i, r) in stats.rules.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"stratum\": {}, \"index\": {}, \"rule\": \"{}\", \"firings\": {}, \
             \"derived_facts\": {}, \"wall_us\": {}, \"index_probes\": {}, \"scans\": {}, \
             \"instructions\": {}, \"fused_probes\": {}, \"emit_memo_hits\": {}}}",
            if i == 0 { "" } else { "," },
            r.stratum,
            r.rule_ix,
            json_escape(&r.rule),
            r.firings,
            r.derived_facts,
            wall_us(r.wall),
            r.index_probes,
            r.scans,
            r.instructions,
            r.fused_probes,
            r.emit_memo_hits,
        );
    }
    out.push_str("\n  ],\n");
    let _ = writeln!(
        out,
        "  \"store\": {{\"distinct_paths\": {}, \"bytes\": {}}}",
        store.distinct_paths,
        store.total_bytes(),
    );
    out.push_str("}\n");
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::eval::{RuleStats, StratumStats};
    use std::time::Duration;

    fn sample_stats() -> EvalStats {
        let mut stats = EvalStats {
            iterations: 3,
            derived_facts: 10,
            rule_firings: 12,
            index_probes: 9,
            scans: 2,
            instructions_executed: 40,
            fused_probes: 5,
            emit_memo_hits: 2,
            ..EvalStats::default()
        };
        stats.strata.push(StratumStats {
            rules: 2,
            iterations: 3,
            derived_facts: 10,
            rule_firings: 12,
            shards: 1,
            wall: Duration::from_micros(120),
        });
        stats.rules.push(RuleStats {
            stratum: 0,
            rule_ix: 0,
            rule: "T($x) <- E($x).".to_string(),
            firings: 4,
            derived_facts: 4,
            wall: Duration::from_micros(60),
            index_probes: 3,
            scans: 1,
            instructions: 20,
            fused_probes: 2,
            emit_memo_hits: 0,
        });
        stats
    }

    #[test]
    fn ok_document_carries_every_section() {
        let store = seqdl_core::store_stats();
        let doc = stats_json(&sample_stats(), &store, None);
        for key in [
            "\"version\": 1",
            "{\"status\":\"ok\"}",
            "\"totals\":",
            "\"emit_memo_hits\": 2",
            "\"wall_pct\": 100.00",
            "\"rule\": \"T($x) <- E($x).\"",
            "\"distinct_paths\":",
        ] {
            assert!(doc.contains(key), "missing {key} in:\n{doc}");
        }
    }

    #[test]
    fn outcomes_render_their_variants() {
        assert!(outcome_json(None).contains("\"ok\""));
        let cancelled = EvalError::Cancelled {
            reason: "deadline of 50ms exceeded".into(),
            partial_stats: Box::default(),
        };
        assert_eq!(
            outcome_json(Some(&cancelled)),
            "{\"status\":\"cancelled\",\"reason\":\"deadline of 50ms exceeded\"}"
        );
        let limit = EvalError::LimitExceeded {
            what: LimitKind::Facts,
            limit: 7,
        };
        assert_eq!(
            outcome_json(Some(&limit)),
            "{\"status\":\"limit\",\"kind\":\"facts\",\"limit\":7}"
        );
        let other = EvalError::Internal {
            detail: "boom \"quoted\"".into(),
        };
        assert!(outcome_json(Some(&other)).contains("\\\"quoted\\\""));
    }

    #[test]
    fn zero_wall_percentages_do_not_divide_by_zero() {
        let pct = wall_pct(Duration::ZERO, Duration::ZERO);
        assert_eq!(pct, 0.0);
    }
}
