//! The shared non-recursive RAM interpreter.
//!
//! One machine executes every lowered procedure: a program counter walks the
//! instruction sequence forward, each choice point ([`Inst::Probe`],
//! [`Inst::Solve`]) owns a frame holding its candidate cursor, and a trail of
//! active choice points drives backtracking.  A single [`Valuation`] is
//! threaded through the whole walk; a frame records the valuation depth on
//! entry and backtracks by truncating to it — no recursion frames, no
//! continuation closures, no interior-mutability error channel.
//!
//! Candidate enumeration is byte-for-byte the legacy matcher's: the same
//! [`choose_candidates`] index selection, the same delta-window clamping and
//! `partition_point` slicing, the same bucket-side fast path, and the same
//! flat/general matchers — so the machine derives exactly the same facts in
//! exactly the same order, which the differential property tests pin down.

use crate::error::EvalError;
use crate::eval::{
    choose_candidates, CandList, Chosen, DeltaWindow, EmitKey, EmitMemo, FireStats, DUMMY_VALUE,
    MAX_JOINT_COLS,
};
use crate::matching::{
    equation_holds, ground_tuple, match_equation, match_predicate_det, match_predicate_flat,
    match_predicate_sink,
};
use crate::plan::{PlannedLiteral, PlannedPredicate, PrefixSource, FLAT_MAX_VARS};
use crate::ram::ir::{FilterOp, Inst, RuleProc};
use seqdl_core::{
    joint_probe_key, Fact, FxMap, Instance, Path, PathId, Relation, Segment, TrieEntry, Tuple,
    Value,
};
use seqdl_syntax::{Binding, Equation, Rule, Term, Valuation, Var};

/// The candidate source of one probe frame.
enum Cands<'r> {
    /// Trie-bucket entries (carry length/next-value metadata).
    Entries(&'r [TrieEntry]),
    /// Bare tuple ids from the joint/ε/packed indexes.
    Ids(&'r [u32]),
    /// Scan fallback: tuple ids `cursor..end`.
    Scan(usize),
    /// No relation (absent or arity mismatch) — or a non-probe frame.
    Empty,
}

/// How a probe frame finishes matching one candidate.
#[derive(Clone, Copy)]
enum Mode {
    /// Flat predicate: one non-backtracking pass per tuple.
    Flat,
    /// Deterministic general predicate (proved by the lowering): at most one
    /// extension per tuple, bound in place — no buffering, no replay.
    Det,
    /// Bucket-side, prefix covers the pattern: entry length `n` decides.
    BucketLen(u32),
    /// Bucket-side with one trailing unbound atomic variable: entry length
    /// `n + 1` plus the entry's next-value decide and bind.
    BucketBind(u32, Var),
    /// General predicate: buffer the tuple's extension deltas and replay.
    General,
    /// Equation frame: extensions buffered on entry, no candidates.
    Equation,
}

/// One choice-point frame.
struct Frame<'r> {
    /// Valuation depth on entry — the truncation target for backtracking.
    depth: usize,
    cands: Cands<'r>,
    cursor: usize,
    mode: Mode,
    tuples: &'r [Tuple],
    /// Flattened binding deltas of the buffered extensions; extension `k`
    /// spans `ext[bounds[k]..bounds[k + 1]]`.
    ext: Vec<(Var, Binding)>,
    bounds: Vec<usize>,
    next_ext: usize,
    /// Probe entries so far, counted towards [`CHOOSE_CACHE_WARMUP`].
    entered: u32,
    /// Memoised index choices for key-pure probes (see
    /// [`RuleProc::choose_cacheable`]): hash of the bound atomic-variable
    /// values → (verified key values, chosen list).  Valid for the whole
    /// fire call — the relation borrow is frozen — and never cleared between
    /// probe entries.
    choose_memo: FxMap<u64, ([Value; MAX_JOINT_COLS], Chosen<'r>)>,
}

/// A candidate pulled from a frame (by value, so matching can mutate the
/// frame's buffers).
enum Cand {
    Entry(TrieEntry),
    Id(usize),
}

impl Cand {
    fn id(&self) -> usize {
        match self {
            Cand::Entry(e) => e.id as usize,
            Cand::Id(id) => *id,
        }
    }
}

impl<'r> Frame<'r> {
    fn new() -> Frame<'r> {
        Frame {
            depth: 0,
            cands: Cands::Empty,
            cursor: 0,
            mode: Mode::Flat,
            tuples: &[],
            ext: Vec::new(),
            bounds: Vec::new(),
            next_ext: 0,
            entered: 0,
            choose_memo: FxMap::default(),
        }
    }

    /// (Re-)initialise this frame for a probe of `planned` over `relation`,
    /// with the same index selection, window clamping, and bucket-side
    /// eligibility as the legacy matcher.
    #[allow(clippy::too_many_arguments)]
    fn enter_probe(
        &mut self,
        planned: &PlannedPredicate,
        relation: Option<&'r Relation>,
        window: Option<DeltaWindow>,
        step: usize,
        det: bool,
        cacheable: bool,
        nu: &Valuation,
        stats: &mut FireStats,
    ) {
        self.depth = nu.len();
        self.cursor = 0;
        self.ext.clear();
        self.bounds.clear();
        self.next_ext = 0;
        self.mode = if planned.flat {
            Mode::Flat
        } else if det {
            Mode::Det
        } else {
            Mode::General
        };
        let Some(relation) = relation else {
            self.cands = Cands::Empty;
            return;
        };
        let (first_id, last_id) = match window {
            Some(w) if w.pos == step => (w.lo.min(relation.len()), w.hi.min(relation.len())),
            _ => (0, relation.len()),
        };
        self.tuples = relation.as_slice();
        // Key-pure probes replay the same index choice for the same tuple of
        // bound atomic-variable values (the lowering proved nothing else
        // about the valuation can change it), so repeated entries skip
        // `choose_candidates` — the hot case is an inner join probed
        // thousands of times over a handful of distinct keys.  The stored
        // key values are compared on hit, so a hash collision falls back to
        // a fresh choice.  The two size gates keep cheap probes off the memo
        // entirely: over a small relation the index choice is a shallow trie
        // lookup that a memo hit can't beat, and a probe entered a handful
        // of times can't recoup the map's allocation and hashing.
        let mut memo_slot = None;
        self.entered = self.entered.saturating_add(1);
        if cacheable && relation.len() >= CHOOSE_CACHE_MIN_REL && self.entered > CHOOSE_CACHE_WARMUP
        {
            let mut keys = [DUMMY_VALUE; MAX_JOINT_COLS];
            let mut n = 0usize;
            let mut resolved = true;
            'key: for probe in &planned.probes {
                for source in &probe.sources {
                    if let PrefixSource::AtomVar(v) = source {
                        match nu.get(*v) {
                            Some(Binding::Atom(a)) => {
                                keys[n] = Value::Atom(*a);
                                n += 1;
                            }
                            _ => {
                                resolved = false;
                                break 'key;
                            }
                        }
                    }
                }
            }
            if resolved {
                let key = joint_probe_key(&keys[..n]);
                if let Some((seen, chosen)) = self.choose_memo.get(&key) {
                    if seen[..n] == keys[..n] {
                        stats.index_probes += 1;
                        let chosen = *chosen;
                        self.apply_chosen(chosen, planned, first_id, last_id, relation.len());
                        return;
                    }
                }
                memo_slot = Some((key, keys));
            }
        }
        match choose_candidates(relation, planned, nu) {
            Some(chosen) => {
                stats.index_probes += 1;
                if let Some((key, firsts)) = memo_slot {
                    self.choose_memo.insert(key, (firsts, chosen));
                }
                self.apply_chosen(chosen, planned, first_id, last_id, relation.len());
            }
            None => {
                stats.scans += 1;
                self.cursor = first_id;
                self.cands = Cands::Scan(last_id);
            }
        }
    }

    /// Clamp a chosen candidate list to the `[first_id, last_id)` window
    /// and install it, deciding bucket-side eligibility — the legacy
    /// matcher's logic verbatim.  The full-range case (no window on this
    /// step) skips the `partition_point` searches outright.
    fn apply_chosen(
        &mut self,
        chosen: Chosen<'r>,
        planned: &PlannedPredicate,
        first_id: usize,
        last_id: usize,
        rel_len: usize,
    ) {
        let full = first_id == 0 && last_id == rel_len;
        match chosen.list {
            CandList::Entries(entries) => {
                let (lo, hi) = if full {
                    (0, entries.len())
                } else {
                    (
                        entries.partition_point(|e| (e.id as usize) < first_id),
                        entries.partition_point(|e| (e.id as usize) < last_id),
                    )
                };
                let bucket_side = planned
                    .extend
                    .filter(|_| chosen.trie_col == Some((0, planned.probes[0].sources.len())));
                let n = planned.probes[0].sources.len() as u32;
                match bucket_side {
                    Some(None) => self.mode = Mode::BucketLen(n),
                    Some(Some(v)) => self.mode = Mode::BucketBind(n, v),
                    None => {}
                }
                self.cands = Cands::Entries(&entries[lo..hi]);
            }
            CandList::Ids(ids) => {
                let (lo, hi) = if full {
                    (0, ids.len())
                } else {
                    (
                        ids.partition_point(|&id| (id as usize) < first_id),
                        ids.partition_point(|&id| (id as usize) < last_id),
                    )
                };
                self.cands = Cands::Ids(&ids[lo..hi]);
            }
        }
    }

    /// (Re-)initialise this frame for an equation, buffering every binding
    /// extension up front.  `Err` means neither side was fully bound — an
    /// unsafe rule.
    fn enter_solve(&mut self, eq: &Equation, nu: &Valuation) -> Result<(), ()> {
        self.depth = nu.len();
        self.cands = Cands::Empty;
        self.cursor = 0;
        self.mode = Mode::Equation;
        self.ext.clear();
        self.bounds.clear();
        self.bounds.push(0);
        self.next_ext = 0;
        let Some(extensions) = match_equation(eq, nu) else {
            return Err(());
        };
        for extension in &extensions {
            self.ext
                .extend(extension.bindings_since(self.depth).iter().cloned());
            self.bounds.push(self.ext.len());
        }
        Ok(())
    }

    /// Candidates remaining in this frame (before any matching filters them).
    fn cands_len(&self) -> usize {
        match self.cands {
            Cands::Entries(entries) => entries.len(),
            Cands::Ids(ids) => ids.len(),
            Cands::Scan(end) => end.saturating_sub(self.cursor),
            Cands::Empty => 0,
        }
    }

    fn advance(&mut self) -> Option<Cand> {
        match self.cands {
            Cands::Entries(entries) => {
                let e = *entries.get(self.cursor)?;
                self.cursor += 1;
                Some(Cand::Entry(e))
            }
            Cands::Ids(ids) => {
                let id = *ids.get(self.cursor)? as usize;
                self.cursor += 1;
                Some(Cand::Id(id))
            }
            Cands::Scan(end) => {
                if self.cursor >= end {
                    return None;
                }
                let id = self.cursor;
                self.cursor += 1;
                Some(Cand::Id(id))
            }
            Cands::Empty => None,
        }
    }

    /// Advance to the next satisfying binding state: truncate `nu` back to
    /// the entry depth, then replay the next buffered extension or match the
    /// next candidate.  Returns `false` when exhausted.  `planned` is the
    /// probe's predicate (`None` for equation frames, which only replay).
    fn next(&mut self, planned: Option<&PlannedPredicate>, nu: &mut Valuation) -> bool {
        nu.truncate(self.depth);
        loop {
            if self.next_ext + 1 < self.bounds.len() {
                let lo = self.bounds[self.next_ext];
                let hi = self.bounds[self.next_ext + 1];
                for (v, b) in &self.ext[lo..hi] {
                    nu.bind_new(*v, *b);
                }
                self.next_ext += 1;
                return true;
            }
            let Some(cand) = self.advance() else {
                return false;
            };
            let mode = self.mode;
            match (mode, cand) {
                (Mode::BucketLen(n), Cand::Entry(e)) => {
                    if e.len == n {
                        return true;
                    }
                }
                (Mode::BucketBind(n, v), Cand::Entry(e)) => {
                    if e.len == n + 1 {
                        if let Some(b) = e.next_atom() {
                            nu.bind_new(v, Binding::Atom(b));
                            return true;
                        }
                    }
                }
                (Mode::Flat, cand) => {
                    // invariant: flat-mode frames are only built by probe lowering, which
                    // always attaches the planned predicate.
                    let planned = planned.expect("flat mode only on probe frames");
                    let tuple = &self.tuples[cand.id()];
                    let mut newly = [None; FLAT_MAX_VARS];
                    // Success leaves the bindings on `nu`; the truncate on
                    // resume pops them.  Failure already backtracked.
                    if match_predicate_flat(&planned.pred.args, tuple, nu, &mut newly).is_some() {
                        return true;
                    }
                }
                (Mode::Det, cand) => {
                    // invariant: det-mode frames are only built by probe lowering, which
                    // always attaches the planned predicate.
                    let planned = planned.expect("det mode only on probe frames");
                    let tuple = &self.tuples[cand.id()];
                    if match_predicate_det(&planned.pred, tuple, nu) {
                        return true;
                    }
                }
                (Mode::General, cand) => {
                    // invariant: general-mode frames are only built by probe lowering, which
                    // always attaches the planned predicate.
                    let planned = planned.expect("general mode only on probe frames");
                    let tuple = &self.tuples[cand.id()];
                    self.ext.clear();
                    self.bounds.clear();
                    self.bounds.push(0);
                    self.next_ext = 0;
                    let base = nu.len();
                    let ext = &mut self.ext;
                    let bounds = &mut self.bounds;
                    match_predicate_sink(&planned.pred, tuple, nu, &mut |nu2: &mut Valuation| {
                        ext.extend(nu2.bindings_since(base).iter().cloned());
                        bounds.push(ext.len());
                    });
                    // Loop: the buffered-extension branch replays them.
                }
                (Mode::Equation, _)
                | (Mode::BucketLen(_), Cand::Id(_))
                | (Mode::BucketBind(..), Cand::Id(_)) => {
                    unreachable!("bucket modes only arise from trie-entry candidate lists")
                }
            }
        }
    }
}

/// Rule bodies at most this long run entirely on stack-allocated working
/// storage; longer ones fall back to heap vectors.
const MAX_INLINE_STEPS: usize = 8;

/// Probe entries a frame must see within one fire call before the choose
/// memo activates: below this, the index choices saved can't recoup the
/// memo's allocation and per-entry key hashing.
const CHOOSE_CACHE_WARMUP: u32 = 16;

/// Minimum probed-relation size for the choose memo: against a smaller
/// relation, `choose_candidates` is a shallow trie lookup about as cheap as
/// the memo hit itself.
const CHOOSE_CACHE_MIN_REL: usize = 128;

fn unplannable(rule: &Rule) -> EvalError {
    EvalError::Unplannable {
        rule: rule.to_string(),
    }
}

fn plan_invariant(step: usize, expected: &str) -> EvalError {
    EvalError::PlanInvariant {
        detail: format!("RAM instruction references step {step}, expected {expected}"),
    }
}

/// Ground the head under `nu`, deduplicate through the memo, and append
/// genuinely new facts — identical to the legacy `fire_rule` emit closure but
/// with a direct error return.
#[allow(clippy::too_many_arguments)]
fn emit_head(
    rule: &Rule,
    head_relation: Option<&Relation>,
    term_counts: &[usize],
    nu: &Valuation,
    memo: &mut EmitMemo,
    seg_scratch: &mut Vec<Segment>,
    tuple_scratch: &mut Tuple,
    out: &mut Vec<Fact>,
    stats: &mut FireStats,
) -> Result<(), EvalError> {
    let head = &rule.head;
    seg_scratch.clear();
    for arg in &head.args {
        if nu.segments_into(arg, seg_scratch).is_none() {
            return Err(unplannable(rule));
        }
    }
    emit_segs(
        rule,
        head_relation,
        term_counts,
        memo,
        seg_scratch,
        tuple_scratch,
        out,
        stats,
    );
    Ok(())
}

/// The back half of [`emit_head`]: count the firing, deduplicate the built
/// segment row through the memo, and append the fact if it is genuinely new.
/// Shared with the templated fused-emit loops, which fill `seg_scratch` holes
/// directly instead of re-walking the head expression.
#[allow(clippy::too_many_arguments)]
fn emit_segs(
    rule: &Rule,
    head_relation: Option<&Relation>,
    term_counts: &[usize],
    memo: &mut EmitMemo,
    seg_scratch: &[Segment],
    tuple_scratch: &mut Tuple,
    out: &mut Vec<Fact>,
    stats: &mut FireStats,
) {
    stats.firings += 1;
    match memo.seen.entry(EmitKey::from_slice(seg_scratch)) {
        std::collections::hash_map::Entry::Occupied(_) => {
            stats.emit_memo_hits += 1;
            return;
        }
        std::collections::hash_map::Entry::Vacant(slot) => {
            slot.insert(());
        }
    }
    tuple_scratch.clear();
    let mut offset = 0usize;
    for &n in term_counts {
        tuple_scratch.push(Path::from_segments(&seg_scratch[offset..offset + n]));
        offset += n;
    }
    if head_relation.is_some_and(|r| r.contains(tuple_scratch)) {
        return;
    }
    out.push(Fact::new(rule.head.relation, tuple_scratch.clone()));
}

fn predicate_of(proc: &RuleProc, step: usize) -> Result<&PlannedPredicate, EvalError> {
    match proc.plan.steps.get(step) {
        Some(PlannedLiteral::MatchPredicate(p)) => Ok(p),
        _ => Err(plan_invariant(step, "a positive predicate")),
    }
}

/// The probe predicate trailed at choice point `cp`, resolved through the
/// Execute one lowered rule procedure against the instance, appending derived
/// head facts to `out` — the RAM twin of [`crate::eval::fire_rule`], sharing
/// its window semantics, emit memo, and counter meanings, plus the RAM-only
/// `instructions`/`fused_probes` counters.
///
/// `governor`, when given, is polled once every
/// [`crate::eval::GOVERNOR_CHECK_INTERVAL`] dispatched instructions — an
/// amortised checkpoint, so the dispatch loop stays tight while a runaway
/// firing pass still observes deadlines and cancellation.
///
/// # Errors
/// Unsafe rules surface as [`EvalError::Unplannable`]; malformed instruction
/// sequences as [`EvalError::PlanInvariant`]; cancellation as
/// [`EvalError::Cancelled`].
pub fn fire_proc(
    proc: &RuleProc,
    instance: &Instance,
    window: Option<DeltaWindow>,
    memo: &mut EmitMemo,
    out: &mut Vec<Fact>,
    governor: Option<&crate::eval::ResourceGovernor>,
) -> Result<FireStats, EvalError> {
    let rule = &proc.rule;
    let head = &rule.head;
    let head_relation = instance
        .relation(head.relation)
        .filter(|r| r.arity() == head.args.len());
    let term_counts = &proc.term_counts;
    let code = &proc.code;
    // All per-call working storage lives on the stack for typical rule sizes
    // (the heap fallback only triggers on very long bodies): a fire call on an
    // empty delta window must cost setup, not mallocs.
    let step_relation = |s: &PlannedLiteral| match s {
        PlannedLiteral::MatchPredicate(p) => instance
            .relation(p.pred.relation)
            .filter(|r| r.arity() == p.pred.args.len()),
        _ => None,
    };
    let steps = &proc.plan.steps;
    let mut rel_buf: [Option<&Relation>; MAX_INLINE_STEPS] = [None; MAX_INLINE_STEPS];
    let mut rel_vec: Vec<Option<&Relation>> = Vec::new();
    let step_relations: &[Option<&Relation>] = if steps.len() <= MAX_INLINE_STEPS {
        for (slot, s) in rel_buf.iter_mut().zip(steps) {
            *slot = step_relation(s);
        }
        &rel_buf[..steps.len()]
    } else {
        rel_vec.extend(steps.iter().map(step_relation));
        &rel_vec
    };
    let mut frame_buf: [Frame<'_>; MAX_INLINE_STEPS];
    let mut frame_vec: Vec<Frame<'_>>;
    let frames: &mut [Frame<'_>] = if code.len() <= MAX_INLINE_STEPS {
        frame_buf = std::array::from_fn(|_| Frame::new());
        &mut frame_buf[..code.len()]
    } else {
        frame_vec = code.iter().map(|_| Frame::new()).collect();
        &mut frame_vec
    };
    // The trail holds each choice point at most once, so `code.len()` bounds
    // its depth.
    let mut trail_buf = [0usize; MAX_INLINE_STEPS];
    let mut trail_vec: Vec<usize> = Vec::new();
    let trail: &mut [usize] = if code.len() <= MAX_INLINE_STEPS {
        &mut trail_buf
    } else {
        trail_vec.resize(code.len(), 0);
        &mut trail_vec
    };
    let mut trail_len = 0usize;
    let mut stats = FireStats::default();
    let mut nu = Valuation::new();
    let mut seg_scratch: Vec<Segment> = Vec::new();
    let mut tuple_scratch: Tuple = Vec::new();
    let templatable = proc.templatable;
    let mut holes: Vec<(usize, Var)> = Vec::new();

    let mut pc = 0usize;
    'forward: loop {
        stats.instructions += 1;
        // Amortised governor checkpoint: one cheap cancellation-and-deadline
        // poll per GOVERNOR_CHECK_INTERVAL dispatches.
        if stats.instructions % crate::eval::GOVERNOR_CHECK_INTERVAL == 0 {
            if let Some(g) = governor {
                g.check_fast()?;
            }
        }
        match &code[pc] {
            Inst::Filter(op) => {
                let pass = match op {
                    FilterOp::FusedProbe { step } => {
                        let planned = predicate_of(proc, *step)?;
                        stats.index_probes += 1;
                        stats.fused_probes += 1;
                        let Some(tuple) = ground_tuple(&planned.pred, &nu) else {
                            return Err(unplannable(rule));
                        };
                        step_relations[*step].is_some_and(|r| r.contains(&tuple))
                    }
                    FilterOp::EqHolds { step } => match &proc.plan.steps[*step] {
                        PlannedLiteral::SolveEquation(eq) => match equation_holds(eq, &nu) {
                            Some(holds) => holds,
                            None => return Err(unplannable(rule)),
                        },
                        _ => return Err(plan_invariant(*step, "a positive equation")),
                    },
                    FilterOp::NegPred { step } => match &proc.plan.steps[*step] {
                        PlannedLiteral::CheckNegatedPredicate(pred) => {
                            let Some(tuple) = ground_tuple(pred, &nu) else {
                                return Err(unplannable(rule));
                            };
                            !instance.contains_fact(&Fact::new(pred.relation, tuple))
                        }
                        _ => return Err(plan_invariant(*step, "a negated predicate")),
                    },
                    FilterOp::NegEq { step } => match &proc.plan.steps[*step] {
                        PlannedLiteral::CheckNegatedEquation(eq) => match equation_holds(eq, &nu) {
                            Some(holds) => !holds,
                            None => return Err(unplannable(rule)),
                        },
                        _ => return Err(plan_invariant(*step, "a negated equation")),
                    },
                };
                if pass {
                    pc += 1;
                    continue 'forward;
                }
            }
            Inst::Probe { step, fused_emit } => {
                let planned = predicate_of(proc, *step)?;
                frames[pc].enter_probe(
                    planned,
                    step_relations[*step],
                    window,
                    *step,
                    proc.det[*step],
                    proc.choose_cacheable[*step],
                    &nu,
                    &mut stats,
                );
                if *fused_emit {
                    // The fused terminal loop: candidates emit straight from
                    // the frame, with no per-candidate dispatch or trail work.
                    stats.fused_probes += 1;
                    // Prefilling the head row costs one pass over the head
                    // terms per loop entry; with only a candidate or two it
                    // is cheaper to ground the head per emit.
                    if templatable && frames[pc].cands_len() >= 4 {
                        // Prefill the head row from the current valuation;
                        // only the probe-bound holes change per candidate.
                        seg_scratch.clear();
                        holes.clear();
                        for arg in &head.args {
                            for term in arg.terms() {
                                match term {
                                    Term::Const(a) => {
                                        seg_scratch.push(Segment::Value(Value::Atom(*a)));
                                    }
                                    Term::Var(v) => match nu.get(*v) {
                                        Some(Binding::Atom(a)) => {
                                            seg_scratch.push(Segment::Value(Value::Atom(*a)));
                                        }
                                        Some(Binding::Path(p)) => seg_scratch.push(p.as_segment()),
                                        None => {
                                            holes.push((seg_scratch.len(), *v));
                                            seg_scratch.push(Segment::Path(PathId::EMPTY));
                                        }
                                    },
                                    Term::Packed(_) => unreachable!("templatable excludes packing"),
                                }
                            }
                        }
                        let entries = match &frames[pc].cands {
                            Cands::Entries(entries) => *entries,
                            _ => &[],
                        };
                        match frames[pc].mode {
                            // Bucket-side bind feeding exactly the one hole:
                            // emit straight from the trie entries, no
                            // valuation traffic at all.
                            Mode::BucketBind(n, v) if holes.len() == 1 && holes[0].1 == v => {
                                let pos = holes[0].0;
                                for e in entries {
                                    if e.len == n + 1 {
                                        if let Some(b) = e.next_atom() {
                                            stats.instructions += 1;
                                            seg_scratch[pos] = Segment::Value(Value::Atom(b));
                                            emit_segs(
                                                rule,
                                                head_relation,
                                                term_counts,
                                                memo,
                                                &seg_scratch,
                                                &mut tuple_scratch,
                                                out,
                                                &mut stats,
                                            );
                                        }
                                    }
                                }
                            }
                            // Bucket-side length check with a fully ground
                            // head: every match fires the same row, so count
                            // them and run the memo once.
                            Mode::BucketLen(n) if holes.is_empty() => {
                                let k = entries.iter().filter(|e| e.len == n).count();
                                if k > 0 {
                                    stats.instructions += k;
                                    stats.firings += k - 1;
                                    // The k-1 collapsed duplicates never probe
                                    // the memo; count them as memo hits so the
                                    // fused path's counters match the general
                                    // loop's firings − distinct-emissions split.
                                    stats.emit_memo_hits += k - 1;
                                    emit_segs(
                                        rule,
                                        head_relation,
                                        term_counts,
                                        memo,
                                        &seg_scratch,
                                        &mut tuple_scratch,
                                        out,
                                        &mut stats,
                                    );
                                }
                            }
                            _ => {
                                while frames[pc].next(Some(planned), &mut nu) {
                                    stats.instructions += 1;
                                    for &(pos, v) in &holes {
                                        seg_scratch[pos] = match nu.get(v) {
                                            Some(Binding::Atom(a)) => {
                                                Segment::Value(Value::Atom(*a))
                                            }
                                            Some(Binding::Path(p)) => p.as_segment(),
                                            None => return Err(unplannable(rule)),
                                        };
                                    }
                                    emit_segs(
                                        rule,
                                        head_relation,
                                        term_counts,
                                        memo,
                                        &seg_scratch,
                                        &mut tuple_scratch,
                                        out,
                                        &mut stats,
                                    );
                                }
                            }
                        }
                    } else {
                        while frames[pc].next(Some(planned), &mut nu) {
                            stats.instructions += 1;
                            emit_head(
                                rule,
                                head_relation,
                                term_counts,
                                &nu,
                                memo,
                                &mut seg_scratch,
                                &mut tuple_scratch,
                                out,
                                &mut stats,
                            )?;
                        }
                    }
                } else if frames[pc].next(Some(planned), &mut nu) {
                    trail[trail_len] = pc;
                    trail_len += 1;
                    pc += 1;
                    continue 'forward;
                }
            }
            Inst::Solve { step } => {
                let eq = match &proc.plan.steps[*step] {
                    PlannedLiteral::SolveEquation(eq) => eq,
                    _ => return Err(plan_invariant(*step, "a positive equation")),
                };
                if frames[pc].enter_solve(eq, &nu).is_err() {
                    return Err(unplannable(rule));
                }
                if frames[pc].next(None, &mut nu) {
                    trail[trail_len] = pc;
                    trail_len += 1;
                    pc += 1;
                    continue 'forward;
                }
            }
            Inst::Emit => {
                emit_head(
                    rule,
                    head_relation,
                    term_counts,
                    &nu,
                    memo,
                    &mut seg_scratch,
                    &mut tuple_scratch,
                    out,
                    &mut stats,
                )?;
            }
        }
        // Backtrack: resume the most recent active choice point, popping
        // exhausted ones; an empty trail ends the walk.
        loop {
            if trail_len == 0 {
                return Ok(stats);
            }
            let cp = trail[trail_len - 1];
            stats.instructions += 1;
            let resumed = match &code[cp] {
                Inst::Probe { step, .. } => {
                    let planned = predicate_of(proc, *step)?;
                    frames[cp].next(Some(planned), &mut nu)
                }
                Inst::Solve { .. } => frames[cp].next(None, &mut nu),
                _ => unreachable!("only choice points are trailed"),
            };
            if resumed {
                pc = cp + 1;
                continue 'forward;
            }
            trail_len -= 1;
        }
    }
}
