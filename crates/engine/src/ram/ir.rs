//! The flat RAM instruction set and lowered program structure.
//!
//! A [`RuleProc`] is one rule compiled to a linear instruction sequence over
//! its [`BodyPlan`]: choice points ([`Inst::Probe`], [`Inst::Solve`]) push a
//! frame the interpreter backtracks through, deterministic guards
//! ([`Inst::Filter`]) just pass or fail, and [`Inst::Emit`] grounds the head
//! through the emit memo.  A [`Program`] arranges the procedures of each
//! stratum into per-level statements: a merge section that runs exactly once
//! (non-recursive components plus static rules of recursive components,
//! hoisted out of the fixpoint) and one loop per recursive component.

use crate::plan::{BodyPlan, PlannedLiteral};
use seqdl_core::RelName;
use seqdl_syntax::Rule;
use std::collections::BTreeSet;
use std::fmt;

/// One instruction of a lowered rule procedure.  `step` indexes into the
/// procedure's [`BodyPlan::steps`]; the plan's per-step metadata (column
/// probes, flatness, bucket-side eligibility) is reused at execution time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inst {
    /// Choice point: enumerate the candidates of the positive predicate at
    /// plan position `step` (through the trie/joint indexes when possible),
    /// binding its variables per candidate.  With `fused_emit` the probe is
    /// the last body step and the lowering fused the following [`Inst::Emit`]
    /// into its candidate loop.
    Probe {
        /// Plan position of the predicate.
        step: usize,
        /// Emit directly from the candidate loop (terminal probe fusion).
        fused_emit: bool,
    },
    /// Choice point: solve the positive equation at plan position `step`,
    /// enumerating its binding extensions.
    Solve {
        /// Plan position of the equation.
        step: usize,
    },
    /// Deterministic guard: pass or backtrack, never binds.
    Filter(FilterOp),
    /// Ground the head under the current valuation, deduplicate through the
    /// [`EmitMemo`](crate::eval::EmitMemo), and append genuinely new facts.
    Emit,
}

/// The guard kinds a [`Inst::Filter`] can execute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FilterOp {
    /// A fused probe: every variable of the positive predicate at `step` is
    /// bound by earlier instructions, so the probe collapses to one ground
    /// existence check against the relation's dedup index.  Never emitted at
    /// a delta position (a [`DeltaWindow`](crate::eval::DeltaWindow) must be
    /// able to restrict the step to a tuple-id range).
    FusedProbe {
        /// Plan position of the fully-bound predicate.
        step: usize,
    },
    /// A fully-bound positive equation: both sides ground, one comparison.
    EqHolds {
        /// Plan position of the equation.
        step: usize,
    },
    /// A negated predicate (always fully bound by plan order).
    NegPred {
        /// Plan position of the negated predicate.
        step: usize,
    },
    /// A negated equation (always fully bound by plan order).
    NegEq {
        /// Plan position of the negated equation.
        step: usize,
    },
}

/// One rule lowered to a RAM procedure: the owned rule and plan plus the
/// instruction sequence and the precomputed delta-variant expansion.
#[derive(Clone, Debug)]
pub struct RuleProc {
    /// The source rule (owned; procedures outlive the borrow of the program).
    pub rule: Rule,
    /// The planned body the instructions index into.
    pub plan: BodyPlan,
    /// The instruction sequence.  Always non-empty; ends in [`Inst::Emit`]
    /// unless the final probe carries `fused_emit`.
    pub code: Vec<Inst>,
    /// Per plan step: the probe is *deterministic* under the binding state
    /// the plan guarantees there — each candidate tuple admits at most one
    /// extension, so the interpreter binds in place instead of buffering and
    /// replaying enumerated extensions (see
    /// [`match_predicate_det`](crate::matching::match_predicate_det)).
    pub det: Vec<bool>,
    /// Per plan step: the probe's index selection is a pure function of its
    /// bound atomic variables' values — no column's prefix sources include a
    /// bound *path* variable, so constants and packed terms fix the rest of
    /// every prefix statically — and the interpreter memoises
    /// [`choose_candidates`](crate::eval::choose_candidates) per key tuple
    /// within one fire call.
    pub choose_cacheable: Vec<bool>,
    /// Plan positions that draw from a fixpoint-driving relation — the
    /// precomputed [`DeltaWindow`](crate::eval::DeltaWindow) variant
    /// expansion: one windowed variant fires per position per semi-naive
    /// round.
    pub delta_positions: Vec<usize>,
    /// The rule is static over its fixpoint scope (no delta positions): it
    /// fires exactly once per stratum and is hoisted into the merge section.
    pub hoisted: bool,
    /// Per head argument: its term count (precomputed so firing does not
    /// re-walk the head).
    pub term_counts: Vec<usize>,
    /// The head has no packed terms, so it grounds to exactly one segment per
    /// term — the fused terminal loop may prefill the row once per loop entry
    /// and only re-fill the probe-fed holes.
    pub templatable: bool,
}

/// The per-level statements of one stratum: a merge section that runs exactly
/// once, then the fixpoint loops of the level's recursive components.
#[derive(Clone, Debug, Default)]
pub struct LevelProgram {
    /// Procedure indices (into [`StratumProgram::procs`]) fired exactly once
    /// at level entry: rules of non-recursive components plus static rules
    /// hoisted out of the level's loops.
    pub merge: Vec<usize>,
    /// One fixpoint loop per recursive component of the level.
    pub loops: Vec<LoopProgram>,
}

/// The fixpoint loop of one recursive component.
#[derive(Clone, Debug)]
pub struct LoopProgram {
    /// The component's head relations — the loop's delta (purged and re-marked
    /// every round); the loop exits when every delta is empty.
    pub relations: BTreeSet<RelName>,
    /// Procedure indices of the loop body: the component's rules with at
    /// least one delta position, fired once per delta window per round.
    pub body: Vec<usize>,
}

/// One stratum lowered to RAM: its rule procedures (in rule order) and its
/// level statements (in evaluation order).
#[derive(Clone, Debug)]
pub struct StratumProgram {
    /// One procedure per rule of the stratum, in declaration order.
    pub procs: Vec<RuleProc>,
    /// Statements per dependency level, levels in ascending order.
    pub levels: Vec<LevelProgram>,
}

/// A whole program lowered to RAM, one [`StratumProgram`] per declared
/// stratum.
#[derive(Clone, Debug)]
pub struct Program {
    /// Per-stratum programs, in evaluation order.
    pub strata: Vec<StratumProgram>,
}

impl RuleProc {
    fn fmt_inst(&self, f: &mut fmt::Formatter<'_>, pc: usize, inst: &Inst) -> fmt::Result {
        write!(f, "      {pc:02}  ")?;
        match inst {
            Inst::Probe { step, fused_emit } => {
                let planned = match &self.plan.steps[*step] {
                    PlannedLiteral::MatchPredicate(p) => p,
                    other => return writeln!(f, "probe <invalid step {other:?}>"),
                };
                if *fused_emit {
                    write!(f, "probe+emit {} -> {}", planned.pred, self.rule.head)?;
                } else {
                    write!(f, "probe   {}", planned.pred)?;
                }
                let probed: Vec<String> = planned
                    .probes
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.can_probe())
                    .map(|(c, p)| format!("col{c}[{}]", p.sources.len()))
                    .collect();
                if !probed.is_empty() {
                    write!(f, "  ; via {}", probed.join(" "))?;
                }
                if planned.extend.is_some() {
                    write!(f, ", bucket")?;
                } else if planned.flat {
                    write!(f, ", flat")?;
                }
                if self.delta_positions.contains(step) {
                    write!(f, "  [delta]")?;
                }
                writeln!(f)
            }
            Inst::Solve { step } => match &self.plan.steps[*step] {
                PlannedLiteral::SolveEquation(eq) => writeln!(f, "solve   {eq}"),
                other => writeln!(f, "solve <invalid step {other:?}>"),
            },
            Inst::Filter(op) => match op {
                FilterOp::FusedProbe { step } => match &self.plan.steps[*step] {
                    PlannedLiteral::MatchPredicate(p) => {
                        writeln!(f, "filter  {}  ; fused probe (fully bound)", p.pred)
                    }
                    other => writeln!(f, "filter <invalid step {other:?}>"),
                },
                FilterOp::EqHolds { step } => match &self.plan.steps[*step] {
                    PlannedLiteral::SolveEquation(eq) => {
                        writeln!(f, "filter  {eq}  ; fully bound")
                    }
                    other => writeln!(f, "filter <invalid step {other:?}>"),
                },
                FilterOp::NegPred { step } => match &self.plan.steps[*step] {
                    PlannedLiteral::CheckNegatedPredicate(p) => writeln!(f, "filter  !{p}"),
                    other => writeln!(f, "filter <invalid step {other:?}>"),
                },
                FilterOp::NegEq { step } => match &self.plan.steps[*step] {
                    PlannedLiteral::CheckNegatedEquation(eq) => writeln!(f, "filter  !({eq})"),
                    other => writeln!(f, "filter <invalid step {other:?}>"),
                },
            },
            Inst::Emit => writeln!(f, "emit    {}", self.rule.head),
        }
    }
}

impl fmt::Display for RuleProc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "    {}", self.rule)?;
        for (pc, inst) in self.code.iter().enumerate() {
            self.fmt_inst(f, pc, inst)?;
        }
        Ok(())
    }
}

fn fmt_relations(relations: &BTreeSet<RelName>) -> String {
    relations
        .iter()
        .map(|r| r.name().to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

impl fmt::Display for StratumProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (lv, level) in self.levels.iter().enumerate() {
            writeln!(f, "  level {lv}:")?;
            if !level.merge.is_empty() {
                writeln!(f, "  merge (once):")?;
                for &p in &level.merge {
                    write!(f, "{}", self.procs[p])?;
                }
            }
            for lp in &level.loops {
                writeln!(f, "  loop {{{}}}:", fmt_relations(&lp.relations))?;
                for &p in &lp.body {
                    write!(f, "{}", self.procs[p])?;
                }
                writeln!(f, "    purge delta {{{}}}", fmt_relations(&lp.relations))?;
                writeln!(
                    f,
                    "    exit when delta {{{}}} is empty",
                    fmt_relations(&lp.relations)
                )?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, stratum) in self.strata.iter().enumerate() {
            writeln!(f, "stratum {i}:")?;
            write!(f, "{stratum}")?;
        }
        Ok(())
    }
}
