//! The RAM layer: planned rules compiled to a flat instruction IR and run on
//! one shared non-recursive interpreter.
//!
//! Lowering ([`lower`], [`lower_stratum`], [`lower_rule`]) turns each
//! [`BodyPlan`](crate::plan::BodyPlan) into a linear [`RuleProc`] — fusing
//! fully-bound probes and equations into filters and the terminal probe into
//! its emit — and arranges each stratum's procedures into per-level merge
//! sections (run once) and fixpoint loops (one per recursive component).
//! Execution ([`fire_proc`]) walks the instruction sequence with an explicit
//! frame-per-choice-point machine that enumerates exactly the same candidates
//! in exactly the same order as the legacy recursive matcher, so both
//! evaluators can swap it in behind `--no-ram` without observable change.

pub mod interp;
pub mod ir;
pub mod lower;

pub use interp::fire_proc;
pub use ir::{FilterOp, Inst, LevelProgram, LoopProgram, Program, RuleProc, StratumProgram};
pub use lower::{lower, lower_rule, lower_stratum};
