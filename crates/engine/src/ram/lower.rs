//! Lowering planned rules to RAM procedures and whole programs.
//!
//! Three fusions happen here, all decided statically from the planner's
//! bound-set propagation:
//!
//! * a positive predicate whose variables are all bound by earlier steps
//!   collapses to a [`FilterOp::FusedProbe`] existence check — except at a
//!   delta position, which must stay enumerable so a
//!   [`DeltaWindow`](crate::eval::DeltaWindow) can restrict it;
//! * a positive equation whose variables are all bound collapses to a
//!   [`FilterOp::EqHolds`] comparison (no valuation clone);
//! * a terminal probe absorbs the following [`Inst::Emit`] into its candidate
//!   loop (`fused_emit`), so the hot innermost join level runs without any
//!   per-candidate instruction dispatch.
//!
//! Whole-program lowering additionally computes each stratum's statement
//! structure from the precedence graph's condensation: non-recursive
//! components and *static* rules of recursive components (rules with no delta
//! position — semi-naive never re-fires them after round zero) are hoisted
//! into a once-per-stratum merge section; the remaining rules form one
//! fixpoint loop per recursive component.

use crate::error::EvalError;
use crate::eval::MAX_JOINT_COLS;
use crate::plan::{plan_rule, BodyPlan, PlannedLiteral, PlannedPredicate, PrefixSource};
use crate::ram::ir::{
    FilterOp, Inst, LevelProgram, LoopProgram, Program, RuleProc, StratumProgram,
};
use seqdl_core::RelName;
use seqdl_syntax::{PrecedenceGraph, Rule, Stratum, Term, Var, VarKind};
use std::collections::BTreeSet;

/// Lower one planned rule to a RAM procedure.  `recursive_over` names the
/// relations driving the enclosing fixpoint (empty for single-pass scopes):
/// it determines the precomputed delta-variant expansion and blocks probe
/// fusion at delta positions.
pub fn lower_rule(rule: &Rule, plan: BodyPlan, recursive_over: &BTreeSet<RelName>) -> RuleProc {
    let delta_positions = plan.delta_positions(recursive_over);
    let mut code = Vec::with_capacity(plan.steps.len() + 1);
    let mut det = vec![false; plan.steps.len()];
    let mut choose_cacheable = vec![false; plan.steps.len()];
    // Rules are short, so the bound-variable set is a flat vector with linear
    // membership tests — no per-step tree clones.
    let mut bound: Vec<Var> = Vec::new();
    let mut walk: Vec<Var> = Vec::new();
    for (ix, step) in plan.steps.iter().enumerate() {
        match step {
            PlannedLiteral::MatchPredicate(p) => {
                let vars = p.pred.vars();
                let fully_bound = vars.iter().all(|v| bound.contains(v));
                if fully_bound && !delta_positions.contains(&ix) {
                    code.push(Inst::Filter(FilterOp::FusedProbe { step: ix }));
                } else {
                    det[ix] = {
                        walk.clear();
                        walk.extend_from_slice(&bound);
                        p.pred
                            .args
                            .iter()
                            .all(|arg| det_terms(arg.terms(), &mut walk))
                    };
                    choose_cacheable[ix] = choose_is_key_pure(p);
                    code.push(Inst::Probe {
                        step: ix,
                        fused_emit: false,
                    });
                    bound.extend(vars);
                }
            }
            PlannedLiteral::SolveEquation(eq) => {
                let vars = eq.vars();
                if vars.iter().all(|v| bound.contains(v)) {
                    code.push(Inst::Filter(FilterOp::EqHolds { step: ix }));
                } else {
                    code.push(Inst::Solve { step: ix });
                    bound.extend(vars);
                }
            }
            PlannedLiteral::CheckNegatedPredicate(_) => {
                code.push(Inst::Filter(FilterOp::NegPred { step: ix }));
            }
            PlannedLiteral::CheckNegatedEquation(_) => {
                code.push(Inst::Filter(FilterOp::NegEq { step: ix }));
            }
        }
    }
    match code.last_mut() {
        Some(Inst::Probe { fused_emit, .. }) => *fused_emit = true,
        _ => code.push(Inst::Emit),
    }
    RuleProc {
        term_counts: rule.head.args.iter().map(|a| a.terms().len()).collect(),
        templatable: rule
            .head
            .args
            .iter()
            .all(|a| a.terms().iter().all(|t| !matches!(t, Term::Packed(_)))),
        rule: rule.clone(),
        plan,
        code,
        det,
        choose_cacheable,
        hoisted: delta_positions.is_empty(),
        delta_positions,
    }
}

/// Is [`choose_candidates`](crate::eval::choose_candidates) for this
/// predicate a pure function of its bound atomic variables' values?  That
/// holds when no column's prefix sources include a bound *path* variable —
/// a path binding contributes a run of segments the trie descent follows, so
/// no fixed-size key captures it — while constants and ground packed terms
/// are static and each atomic variable contributes exactly one key value.
/// The interpreter then memoises the index choice per key tuple within one
/// fire call: candidate list, trie provenance, and bucket-side eligibility
/// all replay unchanged.  This covers joint-indexed probes and plain
/// single-column probes alike; a fully static prefix caches under the empty
/// key and hits on every re-entry.
fn choose_is_key_pure(planned: &PlannedPredicate) -> bool {
    let mut key_vars = 0usize;
    for probe in &planned.probes {
        for source in &probe.sources {
            match source {
                PrefixSource::PathVar(_) => return false,
                PrefixSource::AtomVar(_) => key_vars += 1,
                PrefixSource::Const(_) | PrefixSource::Packed(_) => {}
            }
        }
    }
    key_vars <= MAX_JOINT_COLS
}

/// Would a left-to-right walk of `terms` under the bound set `bound` ever
/// face a choice point?  No iff every term consumes a statically-determined
/// block: constants and atomic variables take one value, bound path variables
/// take their binding's length, packed terms take one packed value (with the
/// same rule inside), and an *unbound* path variable only appears as the last
/// term of its list, where it must absorb the whole remainder.  `bound` is
/// updated in place with the variables such a walk binds, so later arguments
/// (and later occurrences of the same variable) see them.
fn det_terms(terms: &[Term], bound: &mut Vec<Var>) -> bool {
    let last = terms.len().wrapping_sub(1);
    for (i, term) in terms.iter().enumerate() {
        match term {
            Term::Const(_) => {}
            Term::Packed(inner) => {
                if !det_terms(inner.terms(), bound) {
                    return false;
                }
            }
            Term::Var(v) => match v.kind {
                VarKind::Atom => {
                    if !bound.contains(v) {
                        bound.push(*v);
                    }
                }
                VarKind::Path => {
                    if !bound.contains(v) {
                        if i != last {
                            return false;
                        }
                        bound.push(*v);
                    }
                }
            },
        }
    }
    true
}

/// Lower one declared stratum: plan and lower every rule (each with its own
/// component's relations as the fixpoint scope) and build the per-level
/// merge/loop statement structure from the precedence graph's condensation.
///
/// # Errors
/// Unplannable (unsafe) rules.
pub fn lower_stratum(stratum: &Stratum) -> Result<StratumProgram, EvalError> {
    let condensation = PrecedenceGraph::of_rules(stratum.rules.iter()).condensation();
    let comp_of: Vec<usize> = stratum
        .rules
        .iter()
        .map(|r| {
            // invariant: the condensation was built from this same stratum's rules,
            // so every head relation is one of its nodes.
            condensation
                .component_of(r.head.relation)
                .expect("every rule head is a node of the stratum's precedence graph")
        })
        .collect();
    let empty = BTreeSet::new();
    let procs: Vec<RuleProc> = stratum
        .rules
        .iter()
        .enumerate()
        .map(|(ix, rule)| -> Result<RuleProc, EvalError> {
            let plan = plan_rule(rule)?;
            let scc = &condensation.components[comp_of[ix]];
            let over = if scc.recursive { &scc.members } else { &empty };
            Ok(lower_rule(rule, plan, over))
        })
        .collect::<Result<_, _>>()?;
    let mut levels: Vec<LevelProgram> = (0..condensation.level_count())
        .map(|_| LevelProgram::default())
        .collect();
    for (c, scc) in condensation.components.iter().enumerate() {
        let rule_ixs: Vec<usize> = (0..stratum.rules.len())
            .filter(|&i| comp_of[i] == c)
            .collect();
        if scc.recursive {
            let (hoisted, body): (Vec<usize>, Vec<usize>) =
                rule_ixs.into_iter().partition(|&i| procs[i].hoisted);
            levels[scc.level].merge.extend(hoisted);
            levels[scc.level].loops.push(LoopProgram {
                relations: scc.members.clone(),
                body,
            });
        } else {
            levels[scc.level].merge.extend(rule_ixs);
        }
    }
    Ok(StratumProgram { procs, levels })
}

/// Lower a whole program to RAM, one [`StratumProgram`] per declared stratum.
///
/// # Errors
/// Unplannable (unsafe) rules.
pub fn lower(program: &seqdl_syntax::Program) -> Result<Program, EvalError> {
    Ok(Program {
        strata: program
            .strata
            .iter()
            .map(lower_stratum)
            .collect::<Result<_, _>>()?,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use seqdl_core::rel;
    use seqdl_syntax::parse_program;

    fn lower_first(source: &str) -> StratumProgram {
        let program = parse_program(source).unwrap();
        lower_stratum(&program.strata[0]).unwrap()
    }

    #[test]
    fn fully_bound_predicates_fuse_to_filters() {
        // After T(@x·@y) binds both variables, the second T literal is fully
        // bound and not a delta position (the stratum is non-recursive here),
        // so it collapses to a fused-probe filter; the terminal instruction
        // absorbs the emit.
        let lowered = lower_first("S(@x) <- T(@x·@y), U(@y·@x).");
        let code = &lowered.procs[0].code;
        assert!(
            matches!(
                code[0],
                Inst::Probe {
                    fused_emit: false,
                    ..
                }
            ),
            "{code:?}"
        );
        assert!(
            matches!(code[1], Inst::Filter(FilterOp::FusedProbe { step: 1 })),
            "{code:?}"
        );
        assert!(matches!(code[2], Inst::Emit), "{code:?}");
    }

    #[test]
    fn terminal_probes_absorb_the_emit() {
        let lowered = lower_first("T(@x·@z) <- T(@x·@y), R(@y·@z).");
        let code = &lowered.procs[0].code;
        assert_eq!(code.len(), 2, "{code:?}");
        assert!(
            matches!(
                code[1],
                Inst::Probe {
                    fused_emit: true,
                    ..
                }
            ),
            "{code:?}"
        );
    }

    #[test]
    fn fully_bound_equations_fuse_and_delta_positions_stay_enumerable() {
        // In the recursive rule, the T literal is a delta position: it must
        // stay a probe even when a different plan order could bind it.  The
        // equation over already-bound variables becomes a filter.
        let lowered = lower_first("T($x) <- R($x).\nT($y) <- T($y), $y·a = a·$y.");
        let recursive = &lowered.procs[1];
        assert_eq!(recursive.delta_positions, vec![0], "{recursive:?}");
        assert!(
            matches!(recursive.code[0], Inst::Probe { .. }),
            "{:?}",
            recursive.code
        );
        assert!(
            matches!(
                recursive.code[1],
                Inst::Filter(FilterOp::EqHolds { step: 1 })
            ),
            "{:?}",
            recursive.code
        );
    }

    #[test]
    fn static_rules_hoist_out_of_the_fixpoint_loop() {
        // Both rules head the recursive component {T}, but only the second
        // reads T: the first is static and hoists into the merge section.
        let lowered = lower_first("T($x) <- R($x).\nT($y) <- T(@u·$y).");
        assert!(lowered.procs[0].hoisted);
        assert!(!lowered.procs[1].hoisted);
        assert_eq!(lowered.levels.len(), 1);
        assert_eq!(lowered.levels[0].merge, vec![0]);
        assert_eq!(lowered.levels[0].loops.len(), 1);
        assert_eq!(lowered.levels[0].loops[0].body, vec![1]);
        assert!(lowered.levels[0].loops[0].relations.contains(&rel("T")));
    }

    #[test]
    fn negated_literals_lower_to_filters() {
        let program = parse_program("T($x) <- R($x).\n---\nS($x) <- T($x), !B($x).").unwrap();
        let lowered = lower_stratum(&program.strata[1]).unwrap();
        let code = &lowered.procs[0].code;
        assert!(
            matches!(code[1], Inst::Filter(FilterOp::NegPred { step: 1 })),
            "{code:?}"
        );
    }
}
