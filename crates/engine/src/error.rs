//! Errors raised during evaluation.

use seqdl_core::CoreError;
use seqdl_syntax::SyntaxError;
use std::fmt;

/// Errors raised by the evaluation engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The program failed a static well-formedness check (safety, stratification,
    /// arity consistency).
    IllFormed(SyntaxError),
    /// An IDB relation name of the program already holds facts in the input
    /// instance, or is declared there with a different arity.  The paper requires a
    /// program over a schema Γ to use IDB relation names outside Γ (Section 2.3).
    IdbRelationInInput {
        /// The offending relation name.
        relation: String,
    },
    /// A body could not be planned: some positive equation never has a fully bound
    /// side.  This cannot happen for safe rules; it indicates the rule is unsafe.
    Unplannable {
        /// Rendering of the offending rule.
        rule: String,
    },
    /// A planner invariant was violated: the evaluator asked a [`crate::plan::BodyPlan`]
    /// for a step kind it does not hold at that position.  Malformed plans surface
    /// as this error instead of aborting the process.
    PlanInvariant {
        /// What the evaluator expected and what it found.
        detail: String,
    },
    /// An evaluation task failed unexpectedly (a panic on an executor worker
    /// thread, say); surfaced as a result so a parallel run aborts cleanly
    /// instead of hanging or crashing the process.
    Internal {
        /// What failed.
        detail: String,
    },
    /// The data model rejected a derived fact (e.g. an arity mismatch between a rule
    /// head and the relation it populates).
    Data(CoreError),
    /// A resource limit was exceeded; the program most likely does not terminate on
    /// this instance (cf. Example 2.3 of the paper).
    LimitExceeded {
        /// Which limit was hit.
        what: LimitKind,
        /// The configured limit value.
        limit: usize,
    },
}

/// Which evaluation limit was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitKind {
    /// Too many fixpoint iterations in one stratum.
    Iterations,
    /// Too many derived facts.
    Facts,
    /// A derived path grew too long.
    PathLength,
}

impl fmt::Display for LimitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitKind::Iterations => f.write_str("fixpoint iterations"),
            LimitKind::Facts => f.write_str("derived facts"),
            LimitKind::PathLength => f.write_str("derived path length"),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::IllFormed(e) => write!(f, "ill-formed program: {e}"),
            EvalError::IdbRelationInInput { relation } => write!(
                f,
                "IDB relation {relation} already occurs in the input instance; \
                 a program's IDB relation names must be disjoint from the input schema"
            ),
            EvalError::Unplannable { rule } => {
                write!(f, "cannot plan body of rule `{rule}` (rule is not safe)")
            }
            EvalError::PlanInvariant { detail } => {
                write!(f, "planner invariant violated: {detail}")
            }
            EvalError::Internal { detail } => {
                write!(f, "internal evaluation error: {detail}")
            }
            EvalError::Data(e) => write!(f, "derived fact rejected: {e}"),
            EvalError::LimitExceeded { what, limit } => {
                write!(f, "evaluation exceeded the limit of {limit} {what}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<SyntaxError> for EvalError {
    fn from(e: SyntaxError) -> Self {
        EvalError::IllFormed(e)
    }
}

impl From<CoreError> for EvalError {
    fn from(e: CoreError) -> Self {
        EvalError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EvalError::LimitExceeded {
            what: LimitKind::Facts,
            limit: 1000,
        };
        assert_eq!(
            e.to_string(),
            "evaluation exceeded the limit of 1000 derived facts"
        );
        let e = EvalError::Unplannable {
            rule: "S($x) <- $x = $y.".into(),
        };
        assert!(e.to_string().contains("not safe"));
    }
}
