//! Errors raised during evaluation.

use crate::eval::EvalStats;
use seqdl_core::CoreError;
use seqdl_syntax::SyntaxError;
use std::fmt;

/// Errors raised by the evaluation engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The program failed a static well-formedness check (safety, stratification,
    /// arity consistency).
    IllFormed(SyntaxError),
    /// An IDB relation name of the program already holds facts in the input
    /// instance, or is declared there with a different arity.  The paper requires a
    /// program over a schema Γ to use IDB relation names outside Γ (Section 2.3).
    IdbRelationInInput {
        /// The offending relation name.
        relation: String,
    },
    /// A body could not be planned: some positive equation never has a fully bound
    /// side.  This cannot happen for safe rules; it indicates the rule is unsafe.
    Unplannable {
        /// Rendering of the offending rule.
        rule: String,
    },
    /// A planner invariant was violated: the evaluator asked a [`crate::plan::BodyPlan`]
    /// for a step kind it does not hold at that position.  Malformed plans surface
    /// as this error instead of aborting the process.
    PlanInvariant {
        /// What the evaluator expected and what it found.
        detail: String,
    },
    /// An evaluation task failed unexpectedly (a panic on an executor worker
    /// thread, say); surfaced as a result so a parallel run aborts cleanly
    /// instead of hanging or crashing the process.
    Internal {
        /// What failed.
        detail: String,
    },
    /// The data model rejected a derived fact (e.g. an arity mismatch between a rule
    /// head and the relation it populates).
    Data(CoreError),
    /// A resource limit was exceeded; the program most likely does not terminate on
    /// this instance (cf. Example 2.3 of the paper).
    LimitExceeded {
        /// Which limit was hit.
        what: LimitKind,
        /// The configured limit value.
        limit: usize,
    },
    /// The evaluation was cancelled — by a deadline, a caller-held
    /// [`seqdl_core::CancelToken`], or a SIGINT — at a governor checkpoint
    /// (stratum boundary, fixpoint round, or amortised RAM-instruction
    /// check).  The instance built so far is discarded, but the statistics
    /// accumulated up to the cancellation point travel with the error so
    /// callers can report partial progress.
    Cancelled {
        /// Why the evaluation was cancelled (e.g. `"deadline of 50ms exceeded"`).
        reason: String,
        /// Statistics accumulated up to the cancellation point.
        partial_stats: Box<EvalStats>,
    },
    /// A worker job panicked inside the parallel executor.  The panic was
    /// contained by `catch_unwind`, the cancel token was poisoned so the
    /// surviving workers drained, and the error carries the offending rule.
    WorkerPanic {
        /// Rendering of the rule whose job panicked.
        rule: String,
        /// The panic payload, if it was a string.
        detail: String,
    },
}

/// Which evaluation limit was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitKind {
    /// Too many fixpoint iterations in one stratum.
    Iterations,
    /// Too many derived facts.
    Facts,
    /// A derived path grew too long.
    PathLength,
    /// The global path store grew past the configured byte budget.
    StoreBytes,
}

impl fmt::Display for LimitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitKind::Iterations => f.write_str("fixpoint iterations"),
            LimitKind::Facts => f.write_str("derived facts"),
            LimitKind::PathLength => f.write_str("derived path length"),
            LimitKind::StoreBytes => f.write_str("path-store bytes"),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::IllFormed(e) => write!(f, "ill-formed program: {e}"),
            EvalError::IdbRelationInInput { relation } => write!(
                f,
                "IDB relation {relation} already occurs in the input instance; \
                 a program's IDB relation names must be disjoint from the input schema"
            ),
            EvalError::Unplannable { rule } => {
                write!(f, "cannot plan body of rule `{rule}` (rule is not safe)")
            }
            EvalError::PlanInvariant { detail } => {
                write!(f, "planner invariant violated: {detail}")
            }
            EvalError::Internal { detail } => {
                write!(f, "internal evaluation error: {detail}")
            }
            EvalError::Data(e) => write!(f, "derived fact rejected: {e}"),
            EvalError::LimitExceeded { what, limit } => {
                write!(f, "evaluation exceeded the limit of {limit} {what}")
            }
            EvalError::Cancelled { reason, .. } => {
                write!(f, "evaluation cancelled: {reason}")
            }
            EvalError::WorkerPanic { rule, detail } => {
                write!(
                    f,
                    "executor worker panicked evaluating rule `{rule}`: {detail}"
                )
            }
        }
    }
}

impl EvalError {
    /// Attach the run's accumulated statistics to a [`EvalError::Cancelled`]
    /// raised deep inside the evaluation (governor checkpoints return it with
    /// empty stats, since they cannot see the run totals).  Every other error
    /// passes through unchanged.
    #[must_use]
    pub fn with_partial_stats(self, stats: EvalStats) -> EvalError {
        match self {
            EvalError::Cancelled { reason, .. } => EvalError::Cancelled {
                reason,
                partial_stats: Box::new(stats),
            },
            other => other,
        }
    }

    /// The partial statistics carried by a [`EvalError::Cancelled`], if any.
    pub fn partial_stats(&self) -> Option<&EvalStats> {
        match self {
            EvalError::Cancelled { partial_stats, .. } => Some(partial_stats),
            _ => None,
        }
    }
}

impl std::error::Error for EvalError {}

impl From<SyntaxError> for EvalError {
    fn from(e: SyntaxError) -> Self {
        EvalError::IllFormed(e)
    }
}

impl From<CoreError> for EvalError {
    fn from(e: CoreError) -> Self {
        EvalError::Data(e)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EvalError::LimitExceeded {
            what: LimitKind::Facts,
            limit: 1000,
        };
        assert_eq!(
            e.to_string(),
            "evaluation exceeded the limit of 1000 derived facts"
        );
        let e = EvalError::Unplannable {
            rule: "S($x) <- $x = $y.".into(),
        };
        assert!(e.to_string().contains("not safe"));
    }
}
