//! # seqdl-engine — bottom-up evaluation of Sequence Datalog
//!
//! This crate implements the semantics of Section 2.3 of *Expressiveness within
//! Sequence Datalog* (PODS 2021): stratum-by-stratum evaluation of programs with
//! stratified negation, where each stratum is a semipositive program evaluated to
//! its least fixpoint over the result of the preceding strata.
//!
//! The components are:
//!
//! * [`matching`] — associative *matching* of path expressions against ground paths
//!   under a partial valuation (all decompositions are enumerated);
//! * [`plan`] — a body planner that orders literals so that positive predicates bind
//!   variables first, positive equations are evaluated once one side is ground
//!   (which rule safety guarantees is always eventually possible), and negated
//!   literals are checked last;
//! * [`eval`] — naive and semi-naive fixpoint evaluation with explicit
//!   [`EvalLimits`], so that non-terminating programs (such as Example 2.3 of the
//!   paper) surface as [`EvalError::LimitExceeded`] instead of diverging.
//!
//! The top-level entry point is [`Engine`]:
//!
//! ```
//! use seqdl_core::{rel, repeat_path, Instance};
//! use seqdl_engine::Engine;
//! use seqdl_syntax::parse_program;
//!
//! // Example 3.1: all paths from R consisting exclusively of a's.
//! let program = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
//! let input = Instance::unary(rel("R"), [repeat_path("a", 3), repeat_path("b", 2)]);
//! let output = Engine::new().run(&program, &input).unwrap();
//! assert!(output.unary_paths(rel("S")).contains(&repeat_path("a", 3)));
//! assert!(!output.unary_paths(rel("S")).contains(&repeat_path("b", 2)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![warn(clippy::unwrap_used)]

pub mod error;
pub mod eval;
pub mod matching;
pub mod plan;
pub mod ram;
pub mod stats_json;

pub use error::{EvalError, LimitKind};
pub use eval::{
    fire_rule, prepare_idb_instance, register_plan_indexes, restrict_head_indexes, seed_instance,
    DeltaWindow, EmitMemo, Engine, EvalLimits, EvalStats, FireStats, FixpointStrategy,
    ResourceGovernor, RuleStats, StratumStats, GOVERNOR_CHECK_INTERVAL,
};
pub use plan::{plan_rule, BodyPlan, ColumnProbe, PlannedLiteral, PlannedPredicate, PrefixSource};
pub use ram::{fire_proc, RuleProc};
pub use stats_json::stats_json;

use seqdl_core::{Instance, Path, RelName};
use seqdl_syntax::Program;
use std::collections::BTreeSet;

/// Run `program` on `input` and read off the unary output relation `output`, i.e.
/// evaluate the *flat unary query* the program computes (Section 3.1).
///
/// # Errors
/// Any evaluation error (unsafe program, resource limits, …).
pub fn run_unary_query(
    program: &Program,
    input: &Instance,
    output: RelName,
) -> Result<BTreeSet<Path>, EvalError> {
    let result = Engine::new().run(program, input)?;
    Ok(result.unary_paths(output))
}

/// Run `program` on `input` and read off a nullary (boolean) output relation.
///
/// # Errors
/// Any evaluation error (unsafe program, resource limits, …).
pub fn run_boolean_query(
    program: &Program,
    input: &Instance,
    output: RelName,
) -> Result<bool, EvalError> {
    let result = Engine::new().run(program, input)?;
    Ok(result.nullary_true(output))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use seqdl_core::{rel, repeat_path};
    use seqdl_syntax::parse_program;

    #[test]
    fn unary_and_boolean_helpers() {
        let program = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        let input = Instance::unary(rel("R"), [repeat_path("a", 2)]);
        let paths = run_unary_query(&program, &input, rel("S")).unwrap();
        assert_eq!(paths.len(), 1);

        let boolean = parse_program("A <- R($x), a·$x = $x·a.").unwrap();
        assert!(run_boolean_query(&boolean, &input, rel("A")).unwrap());
        let empty = Instance::unary(rel("R"), []);
        assert!(!run_boolean_query(&boolean, &empty, rel("A")).unwrap());
    }
}
