//! Symbolic size measures of path expressions.
//!
//! The measure of a path expression tracks how long its instantiations can get:
//! constants, atomic variables, and packing brackets each contribute exactly one
//! value under every valuation (they are *bounded* occurrences), while each path
//! variable occurrence contributes the length of whatever path the valuation assigns
//! to it.  Comparing measures therefore compares instantiation lengths uniformly
//! over all valuations, which is what the termination criteria of
//! [`crate::analysis`] rely on.

use seqdl_syntax::{PathExpr, Predicate, Term, Var};
use std::collections::BTreeMap;

/// A symbolic size: bounded occurrences plus a multiset of path-variable
/// occurrences.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Measure {
    /// Number of occurrences that contribute exactly one value under any valuation:
    /// constants, atomic variables, and packing brackets.
    pub bounded: usize,
    /// How often each *path* variable occurs.
    pub path_var_occurrences: BTreeMap<Var, usize>,
}

impl Measure {
    /// The measure of a single path expression.
    pub fn of_expr(expr: &PathExpr) -> Measure {
        let mut measure = Measure::default();
        measure.add_expr(expr);
        measure
    }

    /// The combined measure of all components of a predicate.
    pub fn of_predicate(predicate: &Predicate) -> Measure {
        let mut measure = Measure::default();
        for arg in &predicate.args {
            measure.add_expr(arg);
        }
        measure
    }

    fn add_expr(&mut self, expr: &PathExpr) {
        for term in expr.terms() {
            match term {
                Term::Const(_) => self.bounded += 1,
                Term::Var(v) if v.is_atom_var() => self.bounded += 1,
                Term::Var(v) => *self.path_var_occurrences.entry(*v).or_insert(0) += 1,
                Term::Packed(inner) => {
                    // The bracket itself occupies one value slot.
                    self.bounded += 1;
                    self.add_expr(inner);
                }
            }
        }
    }

    /// Total number of occurrences (bounded plus path-variable occurrences).
    pub fn total(&self) -> usize {
        self.bounded + self.path_var_occurrences.values().sum::<usize>()
    }

    /// Componentwise comparison: `self` never instantiates to something longer than
    /// `other` — no more bounded occurrences, and no path variable occurs more
    /// often.  Path variables absent from `other` must be absent from `self`.
    pub fn le(&self, other: &Measure) -> bool {
        if self.bounded > other.bounded {
            return false;
        }
        self.path_var_occurrences
            .iter()
            .all(|(v, n)| other.path_var_occurrences.get(v).copied().unwrap_or(0) >= *n)
    }

    /// Strict comparison: [`Measure::le`] and strictly fewer total occurrences.
    pub fn lt(&self, other: &Measure) -> bool {
        self.le(other) && self.total() < other.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_core::rel;
    use seqdl_syntax::parse_expr;

    fn m(src: &str) -> Measure {
        Measure::of_expr(&parse_expr(src).unwrap())
    }

    #[test]
    fn constants_and_variables_are_counted_with_multiplicity() {
        let measure = m("a·$x·b·$x·@y");
        assert_eq!(
            measure.bounded, 3,
            "a, b and the atomic variable @y are bounded"
        );
        assert_eq!(measure.path_var_occurrences.len(), 1);
        assert_eq!(measure.total(), 5);
    }

    #[test]
    fn the_empty_expression_has_the_zero_measure() {
        let measure = m("eps");
        assert_eq!(measure, Measure::default());
        assert_eq!(measure.total(), 0);
    }

    #[test]
    fn atomic_variables_count_like_constants() {
        assert!(m("@x").le(&m("a")));
        assert!(m("a").le(&m("@x")));
        assert!(m("@x·$y").le(&m("@z·@w·$y")));
        assert!(!m("@x·@y").le(&m("@z")));
    }

    #[test]
    fn packing_counts_the_bracket_and_the_contents() {
        let measure = m("<a·$x>·b");
        assert_eq!(measure.bounded, 3); // bracket + a + b
        assert_eq!(measure.total(), 4);
    }

    #[test]
    fn le_is_a_partial_order_on_small_examples() {
        assert!(m("$x").le(&m("$x·a")));
        assert!(m("$x").le(&m("$x")));
        assert!(!m("$x·a").le(&m("$x")));
        assert!(!m("$x·$x").le(&m("$x")));
        assert!(m("$x·$y").le(&m("$y·a·$x")));
        assert!(!m("$z").le(&m("$x·$y")));
        assert!(
            m("a").le(&m("b")),
            "bounded occurrences are compared by count, not identity"
        );
    }

    #[test]
    fn lt_requires_a_strict_total_decrease() {
        assert!(m("$z").lt(&m("a·$z")));
        assert!(!m("$z").lt(&m("$z")));
        assert!(!m("a·$z").lt(&m("a·$z")));
        assert!(m("eps").lt(&m("a")));
        assert!(m("@a").lt(&m("@a·@b")));
    }

    #[test]
    fn predicate_measures_sum_over_components() {
        let predicate = seqdl_syntax::Predicate::new(
            rel("T"),
            vec![parse_expr("$x·a").unwrap(), parse_expr("$y").unwrap()],
        );
        let measure = Measure::of_predicate(&predicate);
        assert_eq!(measure.bounded, 1);
        assert_eq!(measure.total(), 3);
    }
}
