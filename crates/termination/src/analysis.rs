//! The termination criteria and the per-program report.
//!
//! Soundness arguments (sketch):
//!
//! * **Nonrecursive** — each stratum fires every rule a bounded number of times;
//!   Lemma 5.1 of the paper even gives a linear output-length bound.
//! * **Size non-increasing** — if in every recursive rule of a clique the head
//!   measure is ≤ the measure of some positive body predicate of the same clique,
//!   then every derived clique fact is no larger than some previously derived clique
//!   fact, hence no larger than the largest "base" fact (derived without using the
//!   clique).  Facts over the finite active atom set with bounded component lengths
//!   and fixed arities form a finite set, so the fixpoint is reached.
//! * **Rank decreasing** — if every recursive rule of a clique is *linearly*
//!   recursive (exactly one positive body predicate from the clique) and some
//!   argument position strictly shrinks from that body predicate to the head, then
//!   every fact's chain of clique ancestors strictly decreases that argument's
//!   length; chains are therefore no longer than the largest base fact, each fact
//!   has finitely many successors (the rest of the instance is finite), and the set
//!   of derivable facts is finite by König's lemma.

use crate::measure::Measure;
use seqdl_core::RelName;
use seqdl_syntax::{DependencyGraph, Program, Rule};
use std::collections::BTreeSet;
use std::fmt;

/// Why a recursive clique is guaranteed to terminate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Guarantee {
    /// The clique is not actually recursive (a single relation without a self-loop).
    Nonrecursive,
    /// Every recursive rule is size non-increasing with respect to some clique body
    /// predicate.
    SizeNonIncreasing,
    /// Every recursive rule is linearly recursive and strictly decreases the given
    /// argument position (0-based).
    RankDecreasing {
        /// The 0-based argument position that shrinks.
        argument: usize,
    },
}

impl fmt::Display for Guarantee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Guarantee::Nonrecursive => f.write_str("nonrecursive"),
            Guarantee::SizeNonIncreasing => f.write_str("size non-increasing"),
            Guarantee::RankDecreasing { argument } => {
                write!(f, "argument {} strictly decreases", argument + 1)
            }
        }
    }
}

/// The overall verdict for a program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Every recursive clique carries a termination guarantee.
    Terminating,
    /// At least one clique could not be certified; the program may or may not
    /// terminate.
    Unknown,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Terminating => f.write_str("guaranteed to terminate"),
            Verdict::Unknown => f.write_str("termination not guaranteed"),
        }
    }
}

/// A recursive rule that defeated every termination criterion, located by its
/// coordinates in the analysed program — coordinates rather than a rendering
/// alone, so consumers (the `seqdl check` divergence lint) can anchor
/// diagnostics to the exact rule even when several rules render identically.
#[derive(Clone, Debug)]
pub struct OffendingRule {
    /// Index of the stratum the rule lives in.
    pub stratum: usize,
    /// Index of the rule within its stratum.
    pub rule_index: usize,
    /// Rendering of the rule.
    pub rule: String,
}

/// The analysis result for one recursive clique (strongly connected component of
/// the dependency graph).
#[derive(Clone, Debug)]
pub struct CliqueReport {
    /// The IDB relations of the clique.
    pub relations: Vec<RelName>,
    /// The guarantee found, if any.
    pub guarantee: Option<Guarantee>,
    /// The recursive rules that defeated every criterion (empty when a
    /// guarantee was found).
    pub offending_rules: Vec<OffendingRule>,
}

/// The analysis result for a whole program.
#[derive(Clone, Debug)]
pub struct TerminationReport {
    /// The overall verdict.
    pub verdict: Verdict,
    /// One report per recursive clique, in first-appearance order.
    pub cliques: Vec<CliqueReport>,
}

impl fmt::Display for TerminationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.verdict)?;
        for clique in &self.cliques {
            let names: Vec<String> = clique.relations.iter().map(|r| r.to_string()).collect();
            match &clique.guarantee {
                Some(g) => writeln!(f, "  {{{}}}: {}", names.join(", "), g)?,
                None => {
                    writeln!(
                        f,
                        "  {{{}}}: no guarantee found; offending rules:",
                        names.join(", ")
                    )?;
                    for rule in &clique.offending_rules {
                        writeln!(f, "    {}", rule.rule)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Convenience wrapper: does [`analyse`] certify the program?
pub fn guaranteed_terminating(program: &Program) -> bool {
    analyse(program).verdict == Verdict::Terminating
}

/// Analyse a program and produce a [`TerminationReport`].
pub fn analyse(program: &Program) -> TerminationReport {
    let graph = DependencyGraph::of_program(program);
    let mut seen: BTreeSet<RelName> = BTreeSet::new();
    let mut cliques = Vec::new();

    for relation in graph.nodes() {
        if seen.contains(&relation) {
            continue;
        }
        if !graph.is_recursive_relation(relation) {
            seen.insert(relation);
            continue;
        }
        // The strongly connected component of `relation`: mutually reachable nodes.
        let forward = graph.reachable_from(relation);
        let clique: Vec<RelName> = forward
            .into_iter()
            .filter(|&other| graph.reachable_from(other).contains(&relation))
            .collect();
        seen.extend(clique.iter().copied());
        cliques.push(analyse_clique(program, &clique));
    }

    let verdict = if cliques.iter().all(|c| c.guarantee.is_some()) {
        Verdict::Terminating
    } else {
        Verdict::Unknown
    };
    TerminationReport { verdict, cliques }
}

/// The recursive rules of a clique — head in the clique and at least one positive
/// body predicate in the clique — with their (stratum, index) coordinates.
fn recursive_rules<'a>(
    program: &'a Program,
    clique: &BTreeSet<RelName>,
) -> Vec<(usize, usize, &'a Rule)> {
    program
        .strata
        .iter()
        .enumerate()
        .flat_map(|(si, s)| s.rules.iter().enumerate().map(move |(ri, r)| (si, ri, r)))
        .filter(|(_, _, rule)| {
            clique.contains(&rule.head.relation)
                && rule
                    .positive_body_predicates()
                    .iter()
                    .any(|p| clique.contains(&p.relation))
        })
        .collect()
}

fn analyse_clique(program: &Program, clique: &[RelName]) -> CliqueReport {
    let clique_set: BTreeSet<RelName> = clique.iter().copied().collect();
    let rules = recursive_rules(program, &clique_set);
    if rules.is_empty() {
        return CliqueReport {
            relations: clique.to_vec(),
            guarantee: Some(Guarantee::Nonrecursive),
            offending_rules: Vec::new(),
        };
    }

    // Criterion 1: size non-increasing.
    let size_offenders: Vec<(usize, usize, &Rule)> = rules
        .iter()
        .copied()
        .filter(|(_, _, rule)| !rule_is_size_non_increasing(rule, &clique_set))
        .collect();
    if size_offenders.is_empty() {
        return CliqueReport {
            relations: clique.to_vec(),
            guarantee: Some(Guarantee::SizeNonIncreasing),
            offending_rules: Vec::new(),
        };
    }

    // Criterion 2: rank decreasing at some argument position, linear recursion only.
    let max_arity = rules
        .iter()
        .map(|(_, _, r)| r.head.arity())
        .min()
        .unwrap_or(0);
    for argument in 0..max_arity {
        if rules
            .iter()
            .all(|(_, _, rule)| rule_decreases_argument(rule, &clique_set, argument))
        {
            return CliqueReport {
                relations: clique.to_vec(),
                guarantee: Some(Guarantee::RankDecreasing { argument }),
                offending_rules: Vec::new(),
            };
        }
    }

    CliqueReport {
        relations: clique.to_vec(),
        guarantee: None,
        offending_rules: size_offenders
            .iter()
            .map(|(stratum, rule_index, r)| OffendingRule {
                stratum: *stratum,
                rule_index: *rule_index,
                rule: r.to_string(),
            })
            .collect(),
    }
}

/// Is the head measure bounded by the measure of some positive body predicate of
/// the same clique?
fn rule_is_size_non_increasing(rule: &Rule, clique: &BTreeSet<RelName>) -> bool {
    let head_measure = Measure::of_predicate(&rule.head);
    rule.positive_body_predicates()
        .iter()
        .filter(|p| clique.contains(&p.relation))
        .any(|p| head_measure.le(&Measure::of_predicate(p)))
}

/// Is the rule linearly recursive and does the given head argument strictly shrink
/// compared to the same argument of its unique clique body predicate?
fn rule_decreases_argument(rule: &Rule, clique: &BTreeSet<RelName>, argument: usize) -> bool {
    let clique_predicates: Vec<_> = rule
        .positive_body_predicates()
        .into_iter()
        .filter(|p| clique.contains(&p.relation))
        .collect();
    let [parent] = clique_predicates.as_slice() else {
        // Nonlinear recursion: the rank argument of the soundness sketch breaks down
        // (a large non-designated parent can be recombined indefinitely), so the
        // criterion refuses to certify such rules.
        return false;
    };
    let (Some(head_arg), Some(parent_arg)) =
        (rule.head.args.get(argument), parent.args.get(argument))
    else {
        return false;
    };
    Measure::of_expr(head_arg).lt(&Measure::of_expr(parent_arg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_syntax::parse_program;

    fn report(src: &str) -> TerminationReport {
        analyse(&parse_program(src).unwrap())
    }

    #[test]
    fn nonrecursive_programs_are_certified() {
        let r = report("S($x) <- R($x), a·$x = $x·a.\nT($x·$x) <- S($x).");
        assert_eq!(r.verdict, Verdict::Terminating);
        assert!(r.cliques.is_empty(), "no recursive cliques at all");
    }

    #[test]
    fn example_2_3_is_not_certified() {
        let r = report("T(a).\nT(a·$x) <- T($x).");
        assert_eq!(r.verdict, Verdict::Unknown);
        assert_eq!(r.cliques.len(), 1);
        assert!(r.cliques[0].guarantee.is_none());
        assert!(!r.cliques[0].offending_rules.is_empty());
        assert!(r.to_string().contains("no guarantee"));
    }

    #[test]
    fn consuming_recursion_is_size_non_increasing() {
        // The "only a's" program of Example 3.1: T($x, $y) <- T($x, $y·a).
        let r = report("T($x, $x) <- R($x).\nT($x, $y) <- T($x, $y·a).\nS($x) <- T($x, eps).");
        assert_eq!(r.verdict, Verdict::Terminating);
        assert_eq!(r.cliques.len(), 1);
        assert_eq!(r.cliques[0].guarantee, Some(Guarantee::SizeNonIncreasing));
    }

    #[test]
    fn squaring_is_rank_decreasing() {
        let r = report(
            "T(eps, $x, $x) <- R($x).\nT($y·$x, $x, $z) <- T($y, $x, a·$z).\nS($y) <- T($y, $x, eps).",
        );
        assert_eq!(r.verdict, Verdict::Terminating);
        assert_eq!(r.cliques.len(), 1);
        assert_eq!(
            r.cliques[0].guarantee,
            Some(Guarantee::RankDecreasing { argument: 2 })
        );
    }

    #[test]
    fn nfa_acceptance_is_certified() {
        let r = report(
            "S(@q·$x, eps) <- R($x), N(@q).\n\
             S(@q2·$y, $z·@a) <- S(@q1·@a·$y, $z), D(@q1, @a, @q2).\n\
             A($x) <- S(@q, $x), F(@q).",
        );
        assert_eq!(r.verdict, Verdict::Terminating);
        // The recursive rule keeps the total size constant (4 occurrences on both
        // sides), so the stronger size-non-increasing criterion already applies.
        assert_eq!(r.cliques[0].guarantee, Some(Guarantee::SizeNonIncreasing));
    }

    #[test]
    fn reachability_is_certified() {
        let r = report("T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).\nS <- T(a·b).");
        assert_eq!(r.verdict, Verdict::Terminating);
        assert_eq!(r.cliques[0].guarantee, Some(Guarantee::SizeNonIncreasing));
    }

    #[test]
    fn growing_mutual_recursion_is_not_certified() {
        let r = report("P($x·a) <- Q($x).\nQ($x·b) <- P($x).\nP($x) <- R($x).");
        assert_eq!(r.verdict, Verdict::Unknown);
        assert_eq!(r.cliques.len(), 1);
        assert_eq!(r.cliques[0].relations.len(), 2);
    }

    #[test]
    fn shrinking_mutual_recursion_is_certified() {
        let r = report("P($x) <- Q($x·a).\nQ($x) <- P($x·b).\nP($x) <- R($x).\nS($x) <- P($x).");
        assert_eq!(r.verdict, Verdict::Terminating);
        assert_eq!(r.cliques[0].guarantee, Some(Guarantee::SizeNonIncreasing));
    }

    #[test]
    fn nonlinear_growing_recursion_is_not_rank_certified() {
        // Doubling via nonlinear recursion: neither criterion may certify this.
        let r = report("T($x·$y) <- T($x), T($y).\nT($x) <- R($x).\nS($x) <- T($x).");
        assert_eq!(r.verdict, Verdict::Unknown);
    }

    #[test]
    fn duplicating_head_variables_defeats_the_size_criterion_but_not_rank() {
        // T($x·$x, $z) <- T($x, a·$z): arg 1 doubles but arg 2 strictly shrinks, and
        // the rule is linearly recursive, so the rank criterion certifies it.
        let r = report("T($x, $x) <- R($x).\nT($x·$x, $z) <- T($x, a·$z).\nS($x) <- T($x, eps).");
        assert_eq!(r.verdict, Verdict::Terminating);
        assert_eq!(
            r.cliques[0].guarantee,
            Some(Guarantee::RankDecreasing { argument: 1 })
        );
    }

    #[test]
    fn reports_render_readably() {
        let r = report("T(a).\nT(a·$x) <- T($x).");
        let text = r.to_string();
        assert!(text.contains("termination not guaranteed"));
        let ok = report("T($x, $x) <- R($x).\nT($x, $y) <- T($x, $y·a).\nS($x) <- T($x, eps).");
        assert!(ok.to_string().contains("guaranteed to terminate"));
        assert!(ok.to_string().contains("size non-increasing"));
    }
}
