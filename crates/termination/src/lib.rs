//! # seqdl-termination — conservative termination analysis
//!
//! The paper only considers programs that always terminate (Section 2.3) and refers
//! to Bonner and Mecca's work on termination guarantees for Sequence Datalog.  This
//! crate provides a *conservative, syntactic* analysis that certifies termination
//! for a useful class of programs and reports the offending rules otherwise:
//!
//! * **Nonrecursive** programs always terminate (cf. Lemma 5.1: output lengths are
//!   even linearly bounded).
//! * **Size-non-increasing recursion**: in every recursive rule, the head does not
//!   mention more constants or variable occurrences than some positive body
//!   predicate from the same recursive clique.  Derived facts then never grow, so
//!   only finitely many facts over the active atoms are derivable.
//! * **Rank-decreasing recursion**: some argument position strictly shrinks in every
//!   recursive rule of the clique (the squaring query of Theorem 5.3 and the NFA
//!   program of Example 2.1 are certified this way).
//!
//! Programs outside these classes — such as the diverging Example 2.3 — receive the
//! verdict [`Verdict::Unknown`]; the engine's resource limits remain the safety net
//! at evaluation time.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod measure;

pub use analysis::{
    analyse, guaranteed_terminating, CliqueReport, Guarantee, OffendingRule, TerminationReport,
    Verdict,
};
pub use measure::Measure;

#[cfg(test)]
mod tests {
    use super::*;
    use seqdl_syntax::parse_program;

    #[test]
    fn public_api_smoke_test() {
        let terminating = parse_program("S($x) <- R($x), a·$x = $x·a.").unwrap();
        assert!(guaranteed_terminating(&terminating));

        let diverging = parse_program("T(a).\nT(a·$x) <- T($x).").unwrap();
        assert!(!guaranteed_terminating(&diverging));
        let report = analyse(&diverging);
        assert_eq!(report.verdict, Verdict::Unknown);
    }
}
