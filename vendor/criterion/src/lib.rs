//! Shim for the subset of the Criterion benchmarking API this workspace uses.
//!
//! The build environment has no reachable crates registry, so the real
//! `criterion` cannot be fetched.  This crate keeps the 13 benches in
//! `seqdl-bench` compiling and runnable: `criterion_group!`/`criterion_main!`
//! produce a `main` that executes every registered benchmark a small, fixed
//! number of times and prints median wall-clock timings.  It does no warm-up
//! modelling, outlier rejection, or HTML reporting — swap the workspace
//! dependency back to the real crate for publication-grade numbers.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// How many measured iterations each benchmark runs (after one warm-up).  The
/// reported statistic is the median, so transient load spikes on about half the
/// samples cannot move it; 15 samples keeps sub-millisecond benches stable without
/// making the full suite slow.
const MEASURED_ITERS: usize = 15;

/// Prevent the optimiser from eliding a value or the computation producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"{name}/{parameter}"`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    median: Option<Duration>,
}

impl Bencher {
    /// Run `routine` once as warm-up, then [`MEASURED_ITERS`] measured times,
    /// recording the median duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut samples: Vec<Duration> = (0..MEASURED_ITERS)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
        samples.sort();
        self.median = Some(samples[samples.len() / 2]);
    }
}

fn run_one(full_id: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { median: None };
    f(&mut bencher);
    match bencher.median {
        Some(median) => println!("{full_id:<56} median {median:?} over {MEASURED_ITERS} iters"),
        None => println!("{full_id:<56} (no measurement: routine never called iter)"),
    }
}

/// The benchmark manager; the entry point mirrors Criterion's builder API.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: group_name.to_string(),
        }
    }
}

/// A named group of benchmarks (e.g. one per input size).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Run one benchmark in this group, handing `input` to the routine.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Finish the group (kept for API compatibility; no summary is produced).
    pub fn finish(self) {}
}

/// Define a benchmark group function from one or more `fn(&mut Criterion)`s.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running one or more groups declared with [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (`--bench`, filters);
            // this shim runs everything and only recognises `--help`.
            if std::env::args().any(|a| a == "--help" || a == "-h") {
                println!("criterion shim: runs all registered benchmarks; flags are ignored");
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut counter = 0usize;
        Criterion::default().bench_function("smoke", |b| b.iter(|| counter += 1));
        // One warm-up plus MEASURED_ITERS measured runs.
        assert_eq!(counter, MEASURED_ITERS + 1);
    }

    #[test]
    fn groups_and_ids_format() {
        assert_eq!(BenchmarkId::new("solve", 8).to_string(), "solve/8");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::from_parameter(1), &3usize, |b, &n| {
            b.iter(|| assert_eq!(n, 3));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
