//! Shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no reachable crates registry, so the real `rand`
//! cannot be fetched.  The workload generators in `seqdl-wgen` only need a
//! seedable deterministic generator with `gen_range` (over integer ranges) and
//! `gen_bool`; this crate provides exactly that, backed by SplitMix64.  Equal
//! seeds produce equal streams, which is the only statistical property the
//! workspace relies on (workload generation is required to be reproducible).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be created from a simple `u64` seed.
pub trait SeedableRng: Sized {
    /// Construct a generator from a `u64` seed.  Equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A random number generator.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// Panics if the range is empty, matching `rand`'s contract.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (which must lie in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 uniform mantissa bits, as rand does.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Commonly used generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    ///
    /// Not cryptographically secure (neither is `rand`'s `StdRng` guarantee of
    /// stream stability); sufficient for reproducible workload synthesis.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one u64 of state.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: u32 = rng.gen_range(0..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(99);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..=6_000).contains(&heads), "heads = {heads}");
    }
}
