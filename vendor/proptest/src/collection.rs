//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size band for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> SizeRange {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            lo: range.start,
            hi: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> SizeRange {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            lo: *range.start(),
            hi: *range.end(),
        }
    }
}

/// A strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo + 1;
        let len = self.size.lo + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for vectors of values from `element`, with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn vec_lengths_stay_in_band() {
        let strategy = vec(Just(1u8), 2..=5);
        let mut rng = TestRng::for_case(1);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((2..=5).contains(&v.len()), "len = {}", v.len());
            assert!(v.iter().all(|&x| x == 1));
        }
    }

    #[test]
    fn half_open_and_exact_sizes() {
        let mut rng = TestRng::for_case(2);
        for _ in 0..100 {
            assert!(vec(Just(0u8), 0..3).generate(&mut rng).len() < 3);
            assert_eq!(vec(Just(0u8), 4usize).generate(&mut rng).len(), 4);
        }
    }
}
