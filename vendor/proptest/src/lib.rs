//! Shim for the subset of the proptest API this workspace uses.
//!
//! The build environment has no reachable crates registry, so the real
//! `proptest` cannot be fetched.  This crate implements the pieces the
//! property tests in `tests/prop_*.rs` rely on:
//!
//! * the [`Strategy`] trait with `prop_map` and `boxed`;
//! * [`strategy::Just`], integer-range strategies, [`collection::vec`],
//!   `any::<bool>()`, and the [`prop_oneof!`] union;
//! * the [`proptest!`] test macro with `#![proptest_config(..)]` support and
//!   the `prop_assert*` assertion macros;
//! * a deterministic [`test_runner::TestRunner`] (seeded per case, so failures
//!   are reproducible run-to-run).
//!
//! Deliberately omitted: shrinking, persistence files, `Arbitrary` derive, and
//! non-uniform size distributions.  A failing case panics with the assertion
//! message and the case index; rerunning reproduces it exactly because the
//! per-case RNG seed is a pure function of the case index.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Combine several strategies producing the same value type; each generated
/// value is drawn from one of the branches, chosen uniformly at random.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Union::branch($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::branch($strategy)),+
        ])
    };
}

/// Reject the current case unless `cond` holds.
///
/// Like the real proptest, a rejected case is replaced by a freshly sampled
/// one, and the test fails if the assumption rejects too large a fraction of
/// the generated inputs (see [`test_runner::TestRunner::run`]).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            $crate::test_runner::mark_case_rejected();
            return;
        }
    };
}

/// Assert a condition inside a [`proptest!`] body.
///
/// The real proptest returns an error to the runner; this shim panics, which
/// the runner reports together with the failing case index.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Define property tests: each `fn name(x in strategy, ..) { body }` becomes a
/// `#[test]` that runs `body` over `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run(stringify!($name), |rng| {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strategy), rng);
                    )+
                    $body
                });
            }
        )*
    };
}
