//! `any::<T>()` and the [`Arbitrary`] trait for the types this workspace needs.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical default strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (e.g. `any::<bool>()` for a fair coin).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// The strategy behind `any::<bool>()`.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

macro_rules! impl_arbitrary_int {
    ($($int:ty),*) => {$(
        impl Arbitrary for $int {
            type Strategy = std::ops::RangeInclusive<$int>;

            fn arbitrary() -> Self::Strategy {
                <$int>::MIN..=<$int>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_produces_both_values() {
        let strategy = any::<bool>();
        let mut rng = TestRng::for_case(3);
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[usize::from(strategy.generate(&mut rng))] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn any_u8_covers_the_band() {
        let strategy = any::<u8>();
        let mut rng = TestRng::for_case(4);
        for _ in 0..100 {
            let _: u8 = strategy.generate(&mut rng);
        }
    }
}
