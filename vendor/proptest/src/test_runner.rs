//! Deterministic test running: configuration, the per-case RNG, and the runner.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::Cell;

/// How many random cases a property test runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real proptest defaults to 256; this shim keeps that count (the
        // strategies in this workspace are cheap to sample).
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies: the vendored `rand::rngs::StdRng`
/// (SplitMix64), seeded per case.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The RNG for attempt number `attempt` — a pure function of `attempt`,
    /// so every run of the test binary generates the identical case sequence.
    pub fn for_case(attempt: u32) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(0xD6E8_FEB8_6659_FD93 ^ (u64::from(attempt) << 17)),
        }
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform index in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: usize) -> usize {
        self.inner.gen_range(0..bound)
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

thread_local! {
    /// Set by [`prop_assume!`](crate::prop_assume) when the current case's
    /// inputs violate an assumption; read back by the runner.
    static CASE_REJECTED: Cell<bool> = const { Cell::new(false) };
}

/// Record that the current case was rejected by `prop_assume!`.
pub fn mark_case_rejected() {
    CASE_REJECTED.with(|flag| flag.set(true));
}

/// Clear and return the rejection flag for the case that just finished.
fn take_case_rejected() -> bool {
    CASE_REJECTED.with(|flag| flag.replace(false))
}

/// Runs a property over `cases` generated inputs.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner with the given configuration.
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner { config }
    }

    /// Run `property` until `cases` inputs have been *accepted*.
    ///
    /// A case rejected via `prop_assume!` is resampled with a fresh seed, and
    /// — like the real proptest — the whole test fails if too many inputs are
    /// rejected (10× the case count), so an over-selective assumption cannot
    /// silently hollow the property out.  A panic inside the property is
    /// caught, annotated with the test name and attempt index (which is all
    /// that is needed to reproduce it, since attempt RNGs are deterministic),
    /// and re-raised.
    pub fn run(&mut self, name: &str, mut property: impl FnMut(&mut TestRng)) {
        let max_rejects = u64::from(self.config.cases) * 10;
        let mut accepted: u32 = 0;
        let mut rejected: u64 = 0;
        let mut attempt: u32 = 0;
        while accepted < self.config.cases {
            let mut rng = TestRng::for_case(attempt);
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut rng)));
            match outcome {
                Ok(()) if take_case_rejected() => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest shim: property `{name}` rejected {rejected} inputs \
                         (accepted only {accepted} of {} wanted cases) — \
                         the prop_assume! condition is too selective for its generator",
                        self.config.cases
                    );
                }
                Ok(()) => accepted += 1,
                Err(panic) => {
                    take_case_rejected();
                    eprintln!(
                        "proptest shim: property `{name}` failed at attempt {attempt} \
                         (case {accepted} of {})",
                        self.config.cases
                    );
                    std::panic::resume_unwind(panic);
                }
            }
            attempt = attempt.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rngs_are_deterministic() {
        let a: Vec<u64> = (0..4).map(|c| TestRng::for_case(c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| TestRng::for_case(c).next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn runner_runs_every_case() {
        let mut count = 0u32;
        TestRunner::new(ProptestConfig::with_cases(10)).run("counting", |_| count += 1);
        assert_eq!(count, 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn runner_propagates_failures() {
        TestRunner::new(ProptestConfig::with_cases(3)).run("failing", |_| panic!("boom"));
    }

    #[test]
    fn rejected_cases_are_resampled() {
        // Reject every other attempt; the runner must still deliver the full
        // case count by drawing replacements.
        let mut accepted = 0u32;
        let mut toggle = false;
        TestRunner::new(ProptestConfig::with_cases(8)).run("assuming", |_| {
            toggle = !toggle;
            if toggle {
                mark_case_rejected();
                return;
            }
            accepted += 1;
        });
        assert_eq!(accepted, 8);
    }

    #[test]
    #[should_panic(expected = "too selective")]
    fn rejecting_everything_fails_the_test() {
        TestRunner::new(ProptestConfig::with_cases(4)).run("hopeless", |_| mark_case_rejected());
    }
}
