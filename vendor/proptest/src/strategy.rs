//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of an associated type.
///
/// Unlike the real proptest, generation is direct (no intermediate value
/// trees) and there is no shrinking.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy generating `map(v)` for each `v` this strategy generates.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, map }
    }

    /// Type-erase this strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

// Strategies are passed both by value and by reference in generated code.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

/// Object-safe view of a strategy, used by [`Union`] and [`BoxedStrategy`].
pub trait DynStrategy<T> {
    /// Generate one value (object-safe form of [`Strategy::generate`]).
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy handle; clones share the underlying strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// The strategy produced by [`prop_oneof!`](crate::prop_oneof): draws each
/// value from one of its branches, chosen with probability proportional to
/// the branch weight (uniform for the unweighted form).
pub struct Union<T> {
    branches: Vec<(u32, Arc<dyn DynStrategy<T>>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            branches: self.branches.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Union<T> {
    /// Build a uniform union over the given branches (at least one).
    pub fn new(branches: Vec<Arc<dyn DynStrategy<T>>>) -> Union<T> {
        Union::new_weighted(branches.into_iter().map(|b| (1, b)).collect())
    }

    /// Build a weighted union over the given branches (at least one, with at
    /// least one nonzero weight).
    pub fn new_weighted(branches: Vec<(u32, Arc<dyn DynStrategy<T>>)>) -> Union<T> {
        let total_weight: u64 = branches.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs at least one branch with nonzero weight"
        );
        Union {
            branches,
            total_weight,
        }
    }

    /// Erase one branch strategy (used by the `prop_oneof!` expansion).
    pub fn branch<S>(strategy: S) -> Arc<dyn DynStrategy<T>>
    where
        S: Strategy<Value = T> + 'static,
    {
        Arc::new(strategy)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut ticket = rng.next_u64() % self.total_weight;
        for (weight, branch) in &self.branches {
            let weight = u64::from(*weight);
            if ticket < weight {
                return branch.generate_dyn(rng);
            }
            ticket -= weight;
        }
        unreachable!("ticket within total weight")
    }
}

// Integer ranges are strategies; sampling is delegated to the vendored
// `rand` crate (the same sampler `seqdl-wgen` uses), via `rand::Rng` on
// [`TestRng`].
macro_rules! impl_range_strategy {
    ($($int:ty),*) => {$(
        impl Strategy for Range<$int> {
            type Value = $int;

            fn generate(&self, rng: &mut TestRng) -> $int {
                rand::Rng::gen_range(rng, self.clone())
            }
        }

        impl Strategy for RangeInclusive<$int> {
            type Value = $int;

            fn generate(&self, rng: &mut TestRng) -> $int {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(0)
    }

    #[test]
    fn just_yields_its_value() {
        assert_eq!(Just(7u32).generate(&mut rng()), 7);
    }

    #[test]
    fn map_applies() {
        let doubled = Just(21u32).prop_map(|n| n * 2);
        assert_eq!(doubled.generate(&mut rng()), 42);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let x = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&x));
            let y = (0u8..=3).generate(&mut r);
            assert!(y <= 3);
        }
    }

    #[test]
    fn union_draws_every_branch_eventually() {
        let u = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = std::collections::BTreeSet::new();
        let mut r = rng();
        for _ in 0..200 {
            seen.insert(u.generate(&mut r));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn boxed_strategies_clone_and_generate() {
        let b = Just("x").boxed();
        let c = b.clone();
        assert_eq!(b.generate(&mut rng()), c.generate(&mut rng()));
    }
}
