//! Shim for the subset of the `parking_lot` API this workspace uses.
//!
//! The build environment has no reachable crates registry, so the real
//! `parking_lot` cannot be fetched.  This crate wraps `std::sync` primitives
//! behind `parking_lot`'s non-poisoning API: `read()`, `write()`, and `lock()`
//! return guards directly instead of `Result`s.  A poisoned lock (a panic while
//! holding the guard) is recovered rather than propagated, which matches
//! `parking_lot`'s behaviour of not tracking poison at all.

#![warn(missing_docs)]

use std::sync::{self, LockResult};

/// A reader-writer lock with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

fn unpoison<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking until available.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquire an exclusive write guard, blocking until available.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// A mutual-exclusion lock with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_reads_and_writes() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
