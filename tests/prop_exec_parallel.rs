//! wgen-driven differential property test for the stratified parallel executor:
//! the sequential engine (whole-stratum semi-naive fixpoint) and the SCC
//! scheduler at 1, 2, and 4 worker threads must produce *identical instances*
//! on randomly generated safe, stratified programs — including terminating
//! recursive rules, which exercise the delta-sharded parallel fixpoint.
//!
//! This guards the whole exec subsystem: the precedence-graph condensation, the
//! single-pass evaluation of non-recursive components, the component-scoped
//! semi-naive loop, and the between-rounds merge of per-worker buffers.

use proptest::prelude::*;
use sequence_datalog::exec::Executor;
use sequence_datalog::prelude::*;
use sequence_datalog::wgen::{ProgramConfig, ProgramGenerator, Workloads};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sequential_and_parallel_produce_identical_instances(
        seed in 0u64..(1u64 << 32),
        salt in 0u64..(1u64 << 32),
        allow_equations in any::<bool>(),
        allow_negation in any::<bool>(),
        allow_arity in any::<bool>(),
        allow_recursion in any::<bool>(),
    ) {
        let config = ProgramConfig {
            allow_equations,
            allow_negation,
            allow_arity,
            allow_recursion,
            ..ProgramConfig::default()
        };
        let program = ProgramGenerator::new(seed).random_program(salt, &config);
        let mut input = Workloads::new(seed ^ salt).random_flat_instance(2, 3, 4, 2);
        input.declare_relation(rel("R0"), 1);
        input.declare_relation(rel("R1"), 1);

        let sequential = Engine::new()
            .run(&program, &input)
            .unwrap_or_else(|e| panic!("engine failed: {e}\n{program}"));
        for threads in [1usize, 2, 4] {
            let parallel = Executor::new()
                .with_threads(threads)
                .run(&program, &input)
                .unwrap_or_else(|e| panic!("executor ({threads} threads) failed: {e}\n{program}"));
            // Instances compare relation-by-relation with set semantics, so this
            // covers every IDB relation regardless of derivation order.
            prop_assert_eq!(&sequential, &parallel, "threads = {}\n{}", threads, program);
        }
    }
}
