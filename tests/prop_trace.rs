//! wgen-driven differential property test for the tracing layer: recording a
//! run (spans + counters) must be invisible to evaluation — the traced run
//! derives exactly the same instance and the same core statistics as the
//! untraced run, through the sequential engine and the parallel executor at
//! one and four threads.  The recorded spans themselves must be well-formed:
//! every begin has a matching end on its thread, per-thread timestamps are
//! monotone, and nesting follows the run → stratum → level → round →
//! rule/merge hierarchy.
//!
//! Tracing is process-global (one session at a time), so every test in this
//! binary serializes on [`TEST_LOCK`]; sessions from other test *binaries*
//! are separate processes and cannot interfere.

use proptest::prelude::*;
use sequence_datalog::engine::EvalStats;
use sequence_datalog::exec::Executor;
use sequence_datalog::prelude::*;
use sequence_datalog::trace;
use sequence_datalog::wgen::{ProgramConfig, ProgramGenerator, Workloads};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Strip the wall-clock fields, which legitimately differ between two runs of
/// the same workload; everything else must match exactly.
fn normalized(stats: &EvalStats) -> EvalStats {
    let mut stats = stats.clone();
    for stratum in &mut stats.strata {
        stratum.wall = Duration::ZERO;
    }
    for rule in &mut stats.rules {
        rule.wall = Duration::ZERO;
    }
    stats
}

/// The nesting rank of a span name: a span may only open inside a span of
/// equal or lower rank (worker threads open `rule` spans with no enclosing
/// context, which is also fine — the stack is empty there).
fn rank(name: &str) -> u32 {
    if name == "run" {
        0
    } else if name.starts_with("recover stratum") {
        2
    } else if name.starts_with("stratum") {
        1
    } else if name.starts_with("level") {
        3
    } else if name.starts_with("round") {
        4
    } else if name == "merge" || name.starts_with("rule") {
        5
    } else {
        panic!("unknown span name {name:?}");
    }
}

/// Check span well-formedness over one session's events (already stably
/// sorted by timestamp with per-thread order preserved).
fn check_well_formed(events: &[trace::Event]) {
    let mut stacks: HashMap<u32, Vec<&str>> = HashMap::new();
    let mut last_ts: HashMap<u32, u64> = HashMap::new();
    for event in events {
        let prev = last_ts.entry(event.tid).or_insert(0);
        assert!(
            event.ts_us >= *prev,
            "timestamps must be monotone per thread: {} then {} on tid {}",
            prev,
            event.ts_us,
            event.tid
        );
        *prev = event.ts_us;
        match event.kind {
            trace::EventKind::Begin => {
                let stack = stacks.entry(event.tid).or_default();
                if let Some(parent) = stack.last() {
                    assert!(
                        rank(&event.name) >= rank(parent),
                        "span {:?} must not open inside {:?}",
                        event.name,
                        parent
                    );
                }
                stack.push(&event.name);
            }
            trace::EventKind::End => {
                let top = stacks
                    .get_mut(&event.tid)
                    .and_then(Vec::pop)
                    .unwrap_or_else(|| panic!("end of {:?} without a begin", event.name));
                assert_eq!(top, event.name, "spans must close in LIFO order");
            }
            trace::EventKind::Counter | trace::EventKind::Instant => {}
        }
    }
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tracing_changes_neither_results_nor_statistics(
        seed in 0u64..(1u64 << 32),
        salt in 0u64..(1u64 << 32),
        allow_equations in any::<bool>(),
        allow_negation in any::<bool>(),
    ) {
        let _serial = lock();
        let config = ProgramConfig {
            allow_equations,
            allow_negation,
            allow_recursion: true,
            ..ProgramConfig::default()
        };
        let program = ProgramGenerator::new(seed).random_program(salt, &config);
        let mut input = Workloads::new(seed ^ salt).random_flat_instance(2, 3, 4, 2);
        input.declare_relation(rel("R0"), 1);
        input.declare_relation(rel("R1"), 1);

        // Sequential engine: traced ≡ untraced.
        let (plain_out, plain_stats) = Engine::new()
            .run_with_stats(&program, &input)
            .unwrap_or_else(|e| panic!("untraced engine run failed: {e}\n{program}"));
        let session = trace::start();
        let traced = Engine::new().run_with_stats(&program, &input);
        let events = session.finish();
        let (traced_out, traced_stats) =
            traced.unwrap_or_else(|e| panic!("traced engine run failed: {e}\n{program}"));
        prop_assert_eq!(&plain_out, &traced_out, "engine outputs differ on\n{}", &program);
        prop_assert_eq!(
            normalized(&plain_stats),
            normalized(&traced_stats),
            "engine stats differ on\n{}",
            &program
        );
        prop_assert!(!events.is_empty(), "a traced run records events");
        check_well_formed(&events);

        // Parallel executor at one and four threads: traced ≡ untraced.
        for threads in [1usize, 4] {
            let (plain_out, plain_stats) = Executor::new()
                .with_threads(threads)
                .run_with_stats(&program, &input)
                .unwrap_or_else(|e| panic!("untraced executor run failed: {e}\n{program}"));
            let session = trace::start();
            let traced = Executor::new()
                .with_threads(threads)
                .run_with_stats(&program, &input);
            let events = session.finish();
            let (traced_out, traced_stats) = traced
                .unwrap_or_else(|e| panic!("traced executor run failed: {e}\n{program}"));
            prop_assert_eq!(
                &plain_out,
                &traced_out,
                "executor (threads = {}) outputs differ on\n{}",
                threads,
                &program
            );
            prop_assert_eq!(
                normalized(&plain_stats),
                normalized(&traced_stats),
                "executor (threads = {}) stats differ on\n{}",
                threads,
                &program
            );
            check_well_formed(&events);
        }
    }
}

/// A four-thread reachability run records rule spans on pool worker threads:
/// the trace carries at least two distinct thread ids, and the driver thread
/// holds the full run → stratum hierarchy.
#[test]
fn parallel_trace_spans_workers_and_driver() {
    let _serial = lock();
    let program = parse_program("T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).").unwrap();
    let mut input = Instance::new();
    for (x, y) in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f")] {
        input
            .insert_fact(Fact::new(rel("R"), vec![path_of(&[x, y])]))
            .unwrap();
    }
    let session = trace::start();
    let result = Executor::new().with_threads(4).run(&program, &input);
    let events = session.finish();
    result.expect("reachability terminates");
    check_well_formed(&events);
    let tids: std::collections::BTreeSet<u32> = events.iter().map(|e| e.tid).collect();
    assert!(tids.len() >= 2, "expected >=2 thread ids, got {tids:?}");
    let run_tid = events
        .iter()
        .find(|e| e.name == "run")
        .map(|e| e.tid)
        .expect("run span recorded");
    assert!(
        events
            .iter()
            .any(|e| e.tid == run_tid && e.name.starts_with("stratum")),
        "the driver thread records the stratum spans"
    );
    assert!(
        events
            .iter()
            .any(|e| e.tid != run_tid && e.name.starts_with("rule")),
        "at least one rule pass runs on a pool worker"
    );
}

/// Counters and instants ride along without breaking span nesting, and a
/// finished session leaves tracing disabled — a second untraced run records
/// nothing.
#[test]
fn sessions_are_bounded_and_counters_are_recorded() {
    let _serial = lock();
    let program = parse_program("S($x) <- R($x).").unwrap();
    let input = Instance::unary(rel("R"), [path_of(&["a"]), path_of(&["b"])]);
    let session = trace::start();
    Engine::new().run(&program, &input).expect("runs");
    let events = session.finish();
    check_well_formed(&events);
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, trace::EventKind::Counter)),
        "rule passes record counter events"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, trace::EventKind::Instant)),
        "governor checkpoints record instants"
    );
    assert!(!trace::enabled(), "finish() disables tracing");
    let session = trace::start();
    let events_without_run = session.finish();
    assert!(
        events_without_run.is_empty(),
        "an empty session records nothing"
    );
}
