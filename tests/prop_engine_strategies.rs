//! wgen-driven differential property test for the two fixpoint paths: naive
//! evaluation (full re-scan of every relation each iteration) and semi-naive
//! evaluation (index-probed delta slices) must produce *identical instances* on
//! randomly generated safe, stratified programs.
//!
//! This guards the indexed storage layer: the column index, the watermark delta
//! views, and the probe planner are all exercised by the semi-naive side, while
//! the naive side exercises the same storage through full scans.

use proptest::prelude::*;
use sequence_datalog::engine::FixpointStrategy;
use sequence_datalog::prelude::*;
use sequence_datalog::wgen::{ProgramConfig, ProgramGenerator, Workloads};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn naive_and_semi_naive_produce_identical_instances(
        seed in 0u64..(1u64 << 32),
        salt in 0u64..(1u64 << 32),
        allow_equations in any::<bool>(),
        allow_negation in any::<bool>(),
        allow_arity in any::<bool>(),
    ) {
        let config = ProgramConfig {
            allow_equations,
            allow_negation,
            allow_arity,
            ..ProgramConfig::default()
        };
        let program = ProgramGenerator::new(seed).random_nonrecursive_program(salt, &config);
        let mut input = Workloads::new(seed ^ salt).random_flat_instance(2, 3, 4, 2);
        input.declare_relation(rel("R0"), 1);
        input.declare_relation(rel("R1"), 1);

        let naive = Engine::new()
            .with_strategy(FixpointStrategy::Naive)
            .run(&program, &input)
            .unwrap_or_else(|e| panic!("naive failed: {e}\n{program}"));
        let semi = Engine::new()
            .with_strategy(FixpointStrategy::SemiNaive)
            .run(&program, &input)
            .unwrap_or_else(|e| panic!("semi-naive failed: {e}\n{program}"));

        // Instances compare relation-by-relation with set semantics, so this
        // covers every IDB relation regardless of derivation order.
        prop_assert_eq!(naive, semi);
    }
}
