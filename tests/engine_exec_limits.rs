//! Regression tests pinning `max_iterations` limit behavior across the
//! sequential engine and the parallel executor at 1, 2, and 4 threads.
//!
//! Both evaluators bound *evaluation rounds per fixpoint* against the limit:
//! the engine bounds each declared stratum's fixpoint, the executor each
//! scheduled fixpoint (a level's single pass, or one lock-step recursive
//! group).  A scheduled fixpoint never needs more rounds than the engine's
//! joint stratum fixpoint, so the executor is never *stricter* than the
//! engine — adding `--threads` cannot make a working program fail — and on
//! strata whose recursion is a single component (the diverging programs the
//! limit exists for) the counts coincide exactly, including at the
//! success/failure threshold.  Previously the executor checked per-SCC
//! iteration counts and skipped single-pass rounds entirely, so a zero limit
//! was ignored and per-component counting drifted from the engine's.

use sequence_datalog::engine::{EvalError, EvalLimits};
use sequence_datalog::exec::Executor;
use sequence_datalog::prelude::*;

fn engine_with_max_iterations(max_iterations: usize) -> Engine {
    Engine::new().with_limits(EvalLimits {
        max_iterations,
        max_facts: 100_000,
        max_path_len: 100_000,
        ..EvalLimits::default()
    })
}

/// Suffix-closure program: on a single length-5 path it needs exactly 6
/// productive rounds plus the convergence round, i.e. it converges iff the
/// limit allows 7 rounds.
fn suffix_program() -> Program {
    parse_program("T($x) <- R($x).\nT($y) <- T(@u·$y).").unwrap()
}

fn suffix_input() -> Instance {
    Instance::unary(rel("R"), [path_of(&["a", "b", "c", "d", "e"])])
}

#[test]
fn limits_trigger_identically_on_recursive_strata() {
    let program = suffix_program();
    let input = suffix_input();
    for (limit, expect_ok) in [(7usize, true), (6, false), (1, false)] {
        let engine = engine_with_max_iterations(limit);
        let engine_result = engine.run(&program, &input);
        assert_eq!(
            engine_result.is_ok(),
            expect_ok,
            "engine at limit {limit}: {engine_result:?}"
        );
        for threads in [1usize, 2, 4] {
            let exec_result = Executor::new()
                .with_engine(engine.clone())
                .with_threads(threads)
                .run(&program, &input);
            assert_eq!(
                exec_result.is_ok(),
                expect_ok,
                "executor ({threads} threads) at limit {limit}: {exec_result:?}"
            );
            match (&engine_result, &exec_result) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(a), Err(b)) => {
                    assert!(matches!(a, EvalError::LimitExceeded { .. }), "{a}");
                    assert_eq!(a, b, "identical limit errors");
                }
                _ => unreachable!("checked above"),
            }
        }
    }
}

#[test]
fn diverging_programs_fail_identically_at_every_thread_count() {
    let program = parse_program("T(a).\nT(a·$x) <- T($x).").unwrap();
    let engine = engine_with_max_iterations(25);
    let engine_err = engine.run(&program, &Instance::new()).unwrap_err();
    assert!(matches!(engine_err, EvalError::LimitExceeded { .. }));
    for threads in [1usize, 2, 4] {
        let exec_err = Executor::new()
            .with_engine(engine.clone())
            .with_threads(threads)
            .run(&program, &Instance::new())
            .unwrap_err();
        assert_eq!(engine_err, exec_err, "threads = {threads}");
    }
}

#[test]
fn single_pass_rounds_respect_the_limit_without_being_stricter_than_the_engine() {
    // Three dependency levels are three separate single-pass fixpoint scopes:
    // each needs one round, so any limit ≥ 1 passes (the engine needs 4 joint
    // rounds — the executor is allowed to be cheaper, never stricter), while a
    // zero limit forbids evaluation under both (previously the executor never
    // checked single-pass rounds at all).
    let program = parse_program("T1($x) <- R($x).\nT2($x) <- T1($x).\nS($x) <- T2($x).").unwrap();
    let input = Instance::unary(rel("R"), [path_of(&["a"])]);
    let ok = Executor::new()
        .with_engine(engine_with_max_iterations(1))
        .run(&program, &input);
    assert!(ok.is_ok(), "{ok:?}");
    for evaluate in [
        Executor::new()
            .with_engine(engine_with_max_iterations(0))
            .run(&program, &input),
        engine_with_max_iterations(0).run(&program, &input),
    ] {
        assert!(
            matches!(evaluate, Err(EvalError::LimitExceeded { .. })),
            "{evaluate:?}"
        );
    }
}

#[test]
fn executor_is_never_stricter_than_the_engine_on_chained_recursion() {
    // Two dependent recursive components in one stratum: the engine's joint
    // fixpoint needs fewer rounds than the executor's two sequential group
    // fixpoints would sum to.  With per-fixpoint accounting the executor
    // accepts every limit the engine accepts.
    let program =
        parse_program("A($x) <- R($x).\nA($y) <- A(@u·$y).\nB($x) <- A($x).\nB($y) <- B(@u·$y).")
            .unwrap();
    let input = Instance::unary(rel("R"), [path_of(&["a", "b", "c", "d"])]);
    for limit in [6usize, 7, 8, 20] {
        let engine = engine_with_max_iterations(limit);
        let engine_ok = engine.run(&program, &input).is_ok();
        for threads in [1usize, 2, 4] {
            let exec_ok = Executor::new()
                .with_engine(engine.clone())
                .with_threads(threads)
                .run(&program, &input)
                .is_ok();
            assert!(
                !engine_ok || exec_ok,
                "limit {limit}, threads {threads}: engine ok but executor failed"
            );
        }
    }
}
