//! Property-based tests for the paper's transformations: the Lemma 4.1 pairing
//! encoding, packing structures, doubling/undoubling, and differential equivalence
//! of the feature-elimination rewrites on random instances.

use proptest::prelude::*;
use sequence_datalog::fragments::witnesses;
use sequence_datalog::prelude::*;
use sequence_datalog::rewrite::{
    doubling_program, eliminate_arity, eliminate_equations, encode_pair,
    fold_intermediate_predicates, undoubling_program, PackingStructure,
};
use sequence_datalog::syntax::{PathExpr, Term, Valuation, Var};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn atom_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("a"), Just("b"), Just("c")]
}

fn flat_path(max_len: usize) -> impl Strategy<Value = Path> {
    prop::collection::vec(atom_name(), 0..=max_len).prop_map(|names| path_of(&names))
}

/// A path expression with optional packing and up to one level of nesting.
fn packed_expr() -> impl Strategy<Value = PathExpr> {
    let leaf = prop_oneof![
        atom_name().prop_map(Term::constant),
        prop_oneof![Just("x"), Just("y")].prop_map(|n| Term::Var(Var::path(n))),
    ];
    prop::collection::vec(
        prop_oneof![
            3 => leaf.clone(),
            1 => prop::collection::vec(leaf, 0..3)
                .prop_map(|ts| Term::Packed(PathExpr::from_terms(ts))),
        ],
        0..=5,
    )
    .prop_map(PathExpr::from_terms)
}

// ---------------------------------------------------------------------------
// Lemma 4.1 — the pairing encoding
// ---------------------------------------------------------------------------

proptest! {
    /// `(s1, s2) = (s1', s2')` iff `s1·a·s2·a·s1·b·s2 = s1'·a·s2'·a·s1'·b·s2'`.
    #[test]
    fn lemma_4_1_pairing_is_injective(
        s1 in flat_path(6),
        s2 in flat_path(6),
        t1 in flat_path(6),
        t2 in flat_path(6),
    ) {
        let enc = |x: &Path, y: &Path| {
            let valuation = {
                let mut v = Valuation::new();
                v.bind_path(Var::path("l"), *x);
                v.bind_path(Var::path("r"), *y);
                v
            };
            let expr = encode_pair(
                &PathExpr::var(Var::path("l")),
                &PathExpr::var(Var::path("r")),
            );
            valuation.apply(&expr).expect("encoding expression is fully bound")
        };
        let equal_pairs = s1 == t1 && s2 == t2;
        prop_assert_eq!(enc(&s1, &s2) == enc(&t1, &t2), equal_pairs);
    }

    /// The encoding length is 2(|s1| + |s2|) + 3, so it stays linear (used by the
    /// linearity argument of Lemma 5.1).
    #[test]
    fn lemma_4_1_pairing_length_is_linear(s1 in flat_path(8), s2 in flat_path(8)) {
        let expr = encode_pair(
            &PathExpr::from_path(&s1),
            &PathExpr::from_path(&s2),
        );
        let encoded = Valuation::new().apply(&expr).unwrap();
        prop_assert_eq!(encoded.len(), 2 * (s1.len() + s2.len()) + 3);
    }
}

// ---------------------------------------------------------------------------
// Packing structures (Section 4.3.4)
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn packing_structure_components_assemble_back(expr in packed_expr()) {
        let structure = PackingStructure::of(&expr);
        let components = PackingStructure::components(&expr);
        prop_assert_eq!(components.len(), structure.star_count());
        // Every component is free of packing.
        for c in &components {
            prop_assert!(!c.has_packing(), "component {} still contains packing", c);
        }
        // Reassembling the components along the structure restores the expression.
        let reassembled = structure.assemble(&components)
            .expect("component count matches star count");
        prop_assert_eq!(reassembled, expr);
    }

    #[test]
    fn flat_expressions_have_the_trivial_structure(p in flat_path(6)) {
        let expr = PathExpr::from_path(&p);
        let structure = PackingStructure::of(&expr);
        prop_assert!(structure.is_flat());
        prop_assert_eq!(structure.star_count(), 1);
        prop_assert_eq!(PackingStructure::components(&expr), vec![expr]);
    }

    #[test]
    fn equal_expressions_share_their_structure(expr in packed_expr()) {
        prop_assert_eq!(PackingStructure::of(&expr), PackingStructure::of(&expr.clone()));
        // Wrapping in packing adds one level.
        let wrapped = expr.clone().packed();
        let inner = PackingStructure::of(&expr);
        let outer = PackingStructure::of(&wrapped);
        prop_assert!(!outer.is_flat());
        prop_assert_ne!(outer, inner);
    }
}

// ---------------------------------------------------------------------------
// Doubling / undoubling (Theorem 4.15)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn doubling_then_undoubling_restores_every_path(paths in prop::collection::vec(flat_path(6), 0..6)) {
        let input = Instance::unary(rel("R"), paths);
        let doubling = doubling_program(rel("R"), rel("D"));
        let doubled = Engine::new().run(&doubling, &input).unwrap();
        // Doubling matches the Path::doubled helper.
        let expected: std::collections::BTreeSet<Path> =
            input.unary_paths(rel("R")).iter().map(Path::doubled).collect();
        prop_assert_eq!(doubled.unary_paths(rel("D")), expected);

        let undoubling = undoubling_program(rel("D"), rel("U"));
        let mid = Instance::unary(rel("D"), doubled.unary_paths(rel("D")));
        let restored = Engine::new().run(&undoubling, &mid).unwrap();
        prop_assert_eq!(restored.unary_paths(rel("U")), input.unary_paths(rel("R")));
    }
}

// ---------------------------------------------------------------------------
// Differential equivalence of rewrites on random instances
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arity_elimination_is_equivalent_on_random_instances(paths in prop::collection::vec(flat_path(5), 0..5)) {
        let w = witnesses::reversal_with_arity();
        let rewritten = eliminate_arity(&w.program).unwrap();
        let input = Instance::unary(rel("R"), paths);
        let a = run_unary_query(&w.program, &input, w.output).unwrap();
        let b = run_unary_query(&rewritten, &input, w.output).unwrap();
        prop_assert_eq!(&a, &b);
        // And the query really is reversal.
        let expected: std::collections::BTreeSet<Path> =
            input.unary_paths(rel("R")).iter().map(Path::reversed).collect();
        prop_assert_eq!(a, expected);
    }

    #[test]
    fn equation_elimination_is_equivalent_on_random_instances(paths in prop::collection::vec(flat_path(5), 0..5)) {
        let w = witnesses::only_as_equation();
        let rewritten = eliminate_equations(&w.program).unwrap();
        let input = Instance::unary(rel("R"), paths);
        let a = run_unary_query(&w.program, &input, w.output).unwrap();
        let b = run_unary_query(&rewritten, &input, w.output).unwrap();
        prop_assert_eq!(&a, &b);
        // And the query really is "only a's".
        let expected: std::collections::BTreeSet<Path> = input
            .unary_paths(rel("R"))
            .into_iter()
            .filter(|p| p.iter().all(|v| *v == Value::Atom(atom("a"))))
            .collect();
        prop_assert_eq!(a, expected);
    }

    #[test]
    fn folding_is_equivalent_on_random_instances(paths in prop::collection::vec(flat_path(5), 0..5)) {
        let w = witnesses::only_as_intermediate();
        let folded = fold_intermediate_predicates(&w.program, w.output).unwrap();
        let input = Instance::unary(rel("R"), paths);
        let a = run_unary_query(&w.program, &input, w.output).unwrap();
        let b = run_unary_query(&folded, &input, w.output).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn negated_equation_elimination_is_equivalent_on_random_instances(
        paths in prop::collection::vec(flat_path(4), 0..5),
    ) {
        let w = witnesses::mirrored_distinct_pairs();
        let rewritten = eliminate_equations(&w.program).unwrap();
        let input = Instance::unary(rel("R"), paths);
        let a = run_unary_query(&w.program, &input, w.output).unwrap();
        let b = run_unary_query(&rewritten, &input, w.output).unwrap();
        prop_assert_eq!(a, b);
    }
}
