//! Integration tests for associative unification (Section 4.3.1–4.3.2): the pig-pug
//! procedure, its extension to atomic variables and packing, and Figure 2.

use sequence_datalog::prelude::*;
use sequence_datalog::syntax::{Equation, PathExpr};
use sequence_datalog::unify::{
    is_one_sided_nonlinear, solve, solve_allowing_empty, SolveOptions, Substitution,
};

fn eq(lhs: &str, rhs: &str) -> Equation {
    Equation::new(parse_expr(lhs).unwrap(), parse_expr(rhs).unwrap())
}

/// A valuation-free sanity check: applying a symbolic solution to both sides must
/// yield syntactically identical path expressions.
fn assert_all_solutions_solve(equation: &Equation, solutions: &[Substitution]) {
    for (i, s) in solutions.iter().enumerate() {
        assert!(
            s.solves(equation),
            "solution {i} ({s}) does not solve {equation}"
        );
    }
}

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

#[test]
fn figure_2_has_exactly_four_symbolic_solutions() {
    let equation = eq("$x·<@y·$z>·@w", "$u·$v·$u");
    assert!(is_one_sided_nonlinear(&equation));
    let result = solve(&equation, &SolveOptions::default()).expect("terminates");
    assert_eq!(
        result.solutions.len(),
        4,
        "Figure 2 shows four successful branches"
    );
    assert_all_solutions_solve(&equation, &result.solutions);
    assert!(result.tree.success_count() >= 4);
    assert!(result.tree.failure_count() > 0);
    assert!(result.tree.len() > result.tree.success_count() + result.tree.failure_count());

    // The paper lists the bindings for $u explicitly; check that each of the four
    // expected $u bindings appears in some solution.
    let u = sequence_datalog::syntax::Var::path("u");
    let u_bindings: Vec<String> = result
        .solutions
        .iter()
        .map(|s| {
            s.get(u)
                .map(|e| e.to_string())
                .unwrap_or_else(|| "$u".to_string())
        })
        .collect();
    for expected in ["@w", "<@y·$z>·@w"] {
        assert!(
            u_bindings
                .iter()
                .any(|b| b.contains(expected) || b == expected),
            "no solution binds $u to something containing {expected}: {u_bindings:?}"
        );
    }
}

#[test]
fn figure_2_search_tree_renders() {
    let equation = eq("$x·<@y·$z>·@w", "$u·$v·$u");
    let result = solve(&equation, &SolveOptions::default()).unwrap();
    let ascii = result.tree.render_ascii();
    assert!(
        ascii.contains("$u"),
        "ASCII rendering mentions the variables"
    );
    let dot = result.tree.to_dot();
    assert!(dot.contains("digraph"));
    assert!(
        dot.lines().count() > result.tree.len(),
        "one line per node plus edges"
    );
}

// ---------------------------------------------------------------------------
// Word equations (no packing, no atomic variables)
// ---------------------------------------------------------------------------

#[test]
fn ground_equations_are_decided_exactly() {
    let sat = eq("a·b·c", "a·b·c");
    let solved = solve(&sat, &SolveOptions::default()).unwrap();
    assert!(!solved.is_unsatisfiable());

    for (l, r) in [("a·b", "a·c"), ("a", "a·b"), ("a·b", "b·a")] {
        let unsat = eq(l, r);
        let solved = solve(&unsat, &SolveOptions::default()).unwrap();
        assert!(
            solved.is_unsatisfiable(),
            "{l} = {r} should be unsatisfiable"
        );
    }
}

#[test]
fn one_sided_nonlinearity_is_detected() {
    // $x occurs twice but only on the left: one-sided nonlinear.
    assert!(is_one_sided_nonlinear(&eq("$x·$x", "a·$y·b")));
    // $x occurs on both sides: not one-sided nonlinear.
    assert!(!is_one_sided_nonlinear(&eq("$x·a", "a·$x")));
    // All variables occur once: trivially one-sided nonlinear.
    assert!(is_one_sided_nonlinear(&eq("$x·a·$y", "$u·$v")));
}

#[test]
fn simple_word_equation_solutions_are_complete() {
    // $x·$y = a·b under nonempty-word semantics has exactly one solution
    // ($x = a, $y = b); allowing empty words adds ($x = ε, $y = a·b) and
    // ($x = a·b, $y = ε).
    let equation = eq("$x·$y", "a·b");
    let nonempty = solve(&equation, &SolveOptions::default()).unwrap();
    assert_eq!(nonempty.solutions.len(), 1);
    assert_all_solutions_solve(&equation, &nonempty.solutions);

    let with_empty = solve_allowing_empty(&equation, &SolveOptions::default()).unwrap();
    assert_eq!(with_empty.len(), 3);
    assert_all_solutions_solve(&equation, &with_empty);
}

#[test]
fn atomic_variables_unify_only_with_single_atoms() {
    // @x·$y = a·b·c forces @x = a.
    let equation = eq("@x·$y", "a·b·c");
    let result = solve(&equation, &SolveOptions::default()).unwrap();
    assert_eq!(result.solutions.len(), 1);
    let sol = &result.solutions[0];
    let x = sequence_datalog::syntax::Var::atom("x");
    assert_eq!(sol.get(x).unwrap(), &PathExpr::constant("a"));
    assert_all_solutions_solve(&equation, &result.solutions);

    // @x = a·b has no solution: an atomic variable cannot hold a length-2 path.
    let unsat = eq("@x", "a·b");
    assert!(solve(&unsat, &SolveOptions::default())
        .unwrap()
        .is_unsatisfiable());
}

#[test]
fn packing_mismatches_are_unsatisfiable() {
    // A packed value can never equal an atomic value.
    for (l, r) in [("<a>", "a"), ("<a·b>", "a·b"), ("@x", "<$y>")] {
        let equation = eq(l, r);
        let result = solve_allowing_empty(&equation, &SolveOptions::default()).unwrap();
        assert!(result.is_empty(), "{l} = {r} should be unsatisfiable");
    }
}

#[test]
fn packed_equations_unify_componentwise() {
    // ⟨$x·a⟩·$z = ⟨b·$y⟩·c: inside the packing, $x·a = b·$y, outside $z = c.
    let equation = eq("<$x·a>·$z", "<b·$y>·c");
    let result = solve_allowing_empty(&equation, &SolveOptions::default()).unwrap();
    assert!(!result.is_empty());
    assert_all_solutions_solve(&equation, &result);
    let z = sequence_datalog::syntax::Var::path("z");
    for s in &result {
        assert_eq!(s.get(z).unwrap(), &PathExpr::constant("c"));
    }
}

#[test]
fn nested_packing_unifies_recursively() {
    let equation = eq("<<$x>·a>", "<<b·c>·a>");
    let result = solve_allowing_empty(&equation, &SolveOptions::default()).unwrap();
    assert_eq!(result.len(), 1);
    assert_all_solutions_solve(&equation, &result);
}

#[test]
fn non_terminating_equations_are_reported_not_looped() {
    // $x·a = a·$x is the paper's example of an equation with no finite complete set
    // of symbolic solutions; the solver must give up with an error instead of
    // diverging (it is not one-sided nonlinear).
    let equation = eq("$x·a", "a·$x");
    assert!(!is_one_sided_nonlinear(&equation));
    let opts = SolveOptions::default();
    match solve(&equation, &opts) {
        Err(_) => {}
        Ok(result) => {
            // If the implementation chooses to answer anyway (bounded search), the
            // solutions it does return must still be genuine solutions.
            assert_all_solutions_solve(&equation, &result.solutions);
        }
    }
}

#[test]
fn empty_word_closure_subsumes_nonempty_solutions() {
    // Every nonempty-semantics solution must also appear (up to renaming) when the
    // empty word is allowed (footnote 4).
    let equation = eq("$x·<@y·$z>·@w", "$u·$v·$u");
    let nonempty = solve(&equation, &SolveOptions::default()).unwrap();
    let with_empty = solve_allowing_empty(&equation, &SolveOptions::default()).unwrap();
    assert!(with_empty.len() >= nonempty.solutions.len());
    assert_all_solutions_solve(&equation, &with_empty);
}

#[test]
fn solutions_specialize_to_ground_solutions() {
    // Take each symbolic solution of $x·$y = a·b·$z and ground the remaining
    // variables with concrete paths; the two sides must evaluate to the same path.
    use sequence_datalog::syntax::Valuation;
    let equation = eq("$x·$y", "a·b·$z");
    let result = solve_allowing_empty(&equation, &SolveOptions::default()).unwrap();
    assert!(!result.is_empty());
    for s in &result {
        let lhs = s.apply(&equation.lhs);
        let rhs = s.apply(&equation.rhs);
        // Ground every remaining variable by a fixed path.
        let mut valuation = Valuation::new();
        for v in lhs.vars().into_iter().chain(rhs.vars()) {
            if v.is_atom_var() {
                valuation.bind_atom(v, sequence_datalog::core::atom("k"));
            } else {
                valuation.bind_path(v, path_of(&["k", "k"]));
            }
        }
        let l = valuation.apply(&lhs).expect("fully bound");
        let r = valuation.apply(&rhs).expect("fully bound");
        assert_eq!(l, r, "grounded instantiation of {s} differs");
    }
}

#[test]
fn substitution_composition_is_associative_in_effect() {
    let s1 = Substitution::single(
        sequence_datalog::syntax::Var::path("x"),
        parse_expr("$y·a").unwrap(),
    );
    let s2 = Substitution::single(
        sequence_datalog::syntax::Var::path("y"),
        parse_expr("b").unwrap(),
    );
    let composed = s1.then(&s2);
    let expr = parse_expr("$x·$y").unwrap();
    assert_eq!(composed.apply(&expr), s2.apply(&s1.apply(&expr)));
    assert_eq!(composed.apply(&expr).to_string(), "b·a·b");
}
