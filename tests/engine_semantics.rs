//! Integration tests for the evaluation engine: stratified-negation semantics,
//! naive vs semi-naive agreement, resource limits, and associative matching through
//! the engine.

use sequence_datalog::core::Schema;
use sequence_datalog::engine::{EvalError, FixpointStrategy};
use sequence_datalog::fragments::witnesses;
use sequence_datalog::prelude::*;
use sequence_datalog::wgen::Workloads;

fn p(spec: &str) -> Path {
    if spec.is_empty() {
        Path::empty()
    } else {
        path_of(&spec.split('·').collect::<Vec<_>>())
    }
}

// ---------------------------------------------------------------------------
// Naive vs semi-naive
// ---------------------------------------------------------------------------

#[test]
fn naive_and_semi_naive_agree_on_all_witnesses() {
    let w = Workloads::new(42);
    for witness in witnesses::all_witnesses() {
        // Build an instance covering every EDB relation the witness might read,
        // taking care never to pre-populate one of its IDB relations.
        let mut input = w.nfa_instance(4, 2, 4, 6);
        input = input
            .union(&w.digraph_instance(6, 12))
            .expect("compatible schemas");
        if !witness.program.idb_relations().contains(&rel("S")) {
            input = input
                .union(&w.random_strings(rel("S"), 3, 3, 9))
                .expect("compatible schemas");
        }
        input.declare_relation(rel("B"), 1);
        input
            .insert_fact(Fact::new(rel("B"), vec![p("a")]))
            .unwrap();

        let naive = Engine::new()
            .with_strategy(FixpointStrategy::Naive)
            .run(&witness.program, &input)
            .unwrap_or_else(|e| panic!("{}: naive failed: {e}", witness.name));
        let semi = Engine::new()
            .with_strategy(FixpointStrategy::SemiNaive)
            .run(&witness.program, &input)
            .unwrap_or_else(|e| panic!("{}: semi-naive failed: {e}", witness.name));
        assert_eq!(
            naive.unary_paths(witness.output),
            semi.unary_paths(witness.output),
            "{}: strategies disagree",
            witness.name
        );
        assert_eq!(
            naive.nullary_true(witness.output),
            semi.nullary_true(witness.output),
            "{}: strategies disagree on the boolean result",
            witness.name
        );
    }
}

#[test]
fn semi_naive_fires_strictly_fewer_rules_than_naive_on_reachability() {
    // Regression guard for the delta-watermark evaluation: on the Section 5.1.1
    // reachability program, naive evaluation re-derives every T fact each
    // iteration while semi-naive only joins against the previous iteration's
    // delta slice, so its firing count must be *strictly* smaller (and the
    // derived instance identical).
    let w = witnesses::reachability();
    let input = Workloads::new(3).digraph_instance(24, 80);
    let (naive, naive_stats) = Engine::new()
        .with_strategy(FixpointStrategy::Naive)
        .run_with_stats(&w.program, &input)
        .unwrap();
    let (semi, semi_stats) = Engine::new()
        .with_strategy(FixpointStrategy::SemiNaive)
        .run_with_stats(&w.program, &input)
        .unwrap();
    assert!(
        semi_stats.rule_firings < naive_stats.rule_firings,
        "semi-naive ({}) should fire strictly fewer rules than naive ({})",
        semi_stats.rule_firings,
        naive_stats.rule_firings
    );
    assert_eq!(naive_stats.derived_facts, semi_stats.derived_facts);
    assert_eq!(naive, semi);
}

// ---------------------------------------------------------------------------
// Stratified negation
// ---------------------------------------------------------------------------

#[test]
fn stratified_negation_is_applied_stratum_by_stratum() {
    // Stratum 1 computes Reach; stratum 2 computes the complement over nodes.
    let program = parse_program(
        "Node(@x) <- E(@x·@y).\nNode(@y) <- E(@x·@y).\n\
         Reach(a) <- Node(a).\nReach(@y) <- Reach(@x), E(@x·@y).\n\
         ---\n\
         Unreach(@x) <- Node(@x), !Reach(@x).",
    )
    .unwrap();
    let input = Instance::unary(rel("E"), [p("a·b"), p("b·c"), p("d·e")]);
    let out = Engine::new().run(&program, &input).unwrap();
    let unreach = out.unary_paths(rel("Unreach"));
    assert_eq!(unreach, [p("d"), p("e")].into_iter().collect());
    let reach = out.unary_paths(rel("Reach"));
    assert_eq!(reach, [p("a"), p("b"), p("c")].into_iter().collect());
}

#[test]
fn negation_against_edb_relations_is_semipositive() {
    let program = parse_program("S($x) <- R($x), !Q($x).").unwrap();
    let mut input = Instance::unary(rel("R"), [p("a"), p("b"), p("a·b")]);
    input.declare_relation(rel("Q"), 1);
    input
        .insert_fact(Fact::new(rel("Q"), vec![p("a")]))
        .unwrap();
    let out = run_unary_query(&program, &input, rel("S")).unwrap();
    assert_eq!(out, [p("b"), p("a·b")].into_iter().collect());
}

#[test]
fn unstratified_negation_is_rejected() {
    // P negated in the same stratum in which it is defined.
    let program = parse_program("P($x) <- R($x), !Q($x).\nQ($x) <- R($x), !P($x).").unwrap();
    let input = Instance::unary(rel("R"), [p("a")]);
    let result = Engine::new().run(&program, &input);
    assert!(matches!(result, Err(EvalError::IllFormed(_))));
}

#[test]
fn unsafe_rules_are_rejected() {
    // $y occurs only in the head.
    let program = parse_program("S($x·$y) <- R($x).").unwrap();
    let input = Instance::unary(rel("R"), [p("a")]);
    assert!(matches!(
        Engine::new().run(&program, &input),
        Err(EvalError::IllFormed(_))
    ));
}

#[test]
fn negated_equations_respect_valuations() {
    let program = parse_program("S($x·$y) <- R($x), R($y), $x != $y.").unwrap();
    let input = Instance::unary(rel("R"), [p("a"), p("b")]);
    let out = run_unary_query(&program, &input, rel("S")).unwrap();
    assert_eq!(out, [p("a·b"), p("b·a")].into_iter().collect());
}

// ---------------------------------------------------------------------------
// Associative matching through the engine
// ---------------------------------------------------------------------------

#[test]
fn matching_enumerates_all_decompositions() {
    // Splitting a path into two parts: every split point must be produced.
    let program = parse_program("Split($x·sep·$y) <- R($x·$y).").unwrap();
    let input = Instance::unary(rel("R"), [p("a·b·c")]);
    let out = run_unary_query(&program, &input, rel("Split")).unwrap();
    assert_eq!(
        out,
        [
            p("sep·a·b·c"),
            p("a·sep·b·c"),
            p("a·b·sep·c"),
            p("a·b·c·sep"),
        ]
        .into_iter()
        .collect()
    );
}

#[test]
fn matching_atomic_variables_only_binds_single_atoms() {
    let program = parse_program("First(@x) <- R(@x·$rest).").unwrap();
    let input = Instance::unary(rel("R"), [p("a·b·c"), p("z"), Path::empty()]);
    let out = run_unary_query(&program, &input, rel("First")).unwrap();
    assert_eq!(out, [p("a"), p("z")].into_iter().collect());
}

#[test]
fn matching_repeated_variables_requires_equal_bindings() {
    let program = parse_program("Square($x) <- R($x·$x).").unwrap();
    let input = Instance::unary(
        rel("R"),
        [
            p("a·b·a·b"),
            p("a·b·b·a"),
            p("a·a"),
            p("a·b·c"),
            Path::empty(),
        ],
    );
    let out = run_unary_query(&program, &input, rel("Square")).unwrap();
    assert_eq!(out, [p("a·b"), p("a"), p("")].into_iter().collect());
}

#[test]
fn matching_packed_values_requires_structural_equality() {
    // Pack in an intermediate relation, then match against the packed structure.
    let program = parse_program("T(<$x>·$y) <- R($x·$y).\n---\nInner($x) <- T(<$x>·$y).").unwrap();
    let input = Instance::unary(rel("R"), [p("a·b")]);
    let out = run_unary_query(&program, &input, rel("Inner")).unwrap();
    // Splits of a·b: (ε, a·b), (a, b), (a·b, ε) — the packed prefix is each of ε, a, a·b.
    assert_eq!(out, [p(""), p("a"), p("a·b")].into_iter().collect());
}

#[test]
fn equations_bind_variables_when_one_side_is_ground() {
    let program = parse_program("S($y) <- R($x), $x = a·$y·b.").unwrap();
    let input = Instance::unary(rel("R"), [p("a·q·r·b"), p("a·b"), p("x·y"), p("a·q")]);
    let out = run_unary_query(&program, &input, rel("S")).unwrap();
    assert_eq!(out, [p("q·r"), p("")].into_iter().collect());
}

// ---------------------------------------------------------------------------
// Limits and statistics
// ---------------------------------------------------------------------------

#[test]
fn fact_limit_stops_blowing_up_programs() {
    // The cross-product of substrings grows quickly; a small fact limit must stop it.
    let program = parse_program("Pairs($x·$y) <- R($u·$x·$v), R($w·$y·$z).").unwrap();
    let input = Instance::unary(rel("R"), [Workloads::new(1).random_string(14, 3, 0)]);
    let limits = EvalLimits {
        max_iterations: 100,
        max_facts: 50,
        max_path_len: 10_000,
        ..EvalLimits::default()
    };
    let result = Engine::new().with_limits(limits).run(&program, &input);
    assert!(matches!(result, Err(EvalError::LimitExceeded { .. })));
}

#[test]
fn path_length_limit_stops_growing_programs() {
    let program = parse_program("T(a).\nT($x·$x) <- T($x).").unwrap();
    let limits = EvalLimits {
        max_iterations: 1_000,
        max_facts: 1_000_000,
        max_path_len: 32,
        ..EvalLimits::default()
    };
    let result = Engine::new()
        .with_limits(limits)
        .run(&program, &Instance::new());
    assert!(matches!(result, Err(EvalError::LimitExceeded { .. })));
}

#[test]
fn stats_reflect_the_amount_of_work_done() {
    let w = witnesses::reachability();
    let small = Workloads::new(1).digraph_instance(6, 10);
    let large = Workloads::new(1).digraph_instance(40, 160);
    let (_, small_stats) = Engine::new().run_with_stats(&w.program, &small).unwrap();
    let (_, large_stats) = Engine::new().run_with_stats(&w.program, &large).unwrap();
    assert!(large_stats.derived_facts >= small_stats.derived_facts);
    assert!(large_stats.rule_firings >= small_stats.rule_firings);
    assert!(small_stats.iterations >= 1);
}

#[test]
fn outputs_of_flat_queries_on_flat_instances_are_flat() {
    // Even programs that use packing internally produce flat output relations when
    // the query is flat-to-flat (the paper's baseline query class).
    let w = witnesses::three_occurrences();
    let mut input = Instance::new();
    input.declare_relation(rel("R"), 1);
    input.declare_relation(rel("S"), 1);
    input
        .insert_fact(Fact::new(rel("R"), vec![p("a·b·a·b·a·b")]))
        .unwrap();
    input
        .insert_fact(Fact::new(rel("S"), vec![p("a·b")]))
        .unwrap();
    let out = Engine::new().run(&w.program, &input).unwrap();
    // The packed intermediate relation T is not flat, but the input and the nullary
    // output are; projecting the result to the output schema yields a flat instance.
    let mut schema = Schema::new();
    schema.declare(w.output, 0);
    assert!(out.project_to_schema(&schema).is_flat());
}
