//! Differential testing over *randomly generated* nonrecursive programs: the
//! engine's two fixpoint strategies, the equation-elimination rewrite, the
//! Lemma 7.2 normal form, the Theorem 7.1 algebra translation, and the termination
//! analysis must all agree with direct evaluation.

use sequence_datalog::algebra::{datalog_to_algebra, eval};
use sequence_datalog::core::Tuple;
use sequence_datalog::engine::FixpointStrategy;
use sequence_datalog::prelude::*;
use sequence_datalog::rewrite::{eliminate_equations, to_normal_form};
use sequence_datalog::wgen::{ProgramConfig, ProgramGenerator, Workloads};
use std::collections::BTreeSet;

/// The output relation of a generated program: the head of the last rule of the
/// last stratum.
fn output_relation(program: &Program) -> RelName {
    program
        .strata
        .last()
        .and_then(|s| s.rules.last())
        .map(|r| r.head.relation)
        .expect("generated programs have rules")
}

/// A small random instance over the generator's EDB schema `{R0/1, R1/1}`.
fn edb_instance(seed: u64) -> Instance {
    let w = Workloads::new(seed);
    let mut instance = w.random_flat_instance(2, 3, 4, 2);
    // `random_flat_instance` already names its relations R0, R1; make sure both
    // exist even when empty.
    instance.declare_relation(rel("R0"), 1);
    instance.declare_relation(rel("R1"), 1);
    instance
}

/// All tuples of `relation` in `result`, as a set.
fn tuples_of(result: &Instance, relation: RelName) -> BTreeSet<Tuple> {
    result
        .relation(relation)
        .map(|r| r.tuples().into_iter().collect())
        .unwrap_or_default()
}

#[test]
fn naive_and_semi_naive_agree_on_random_programs() {
    let generator = ProgramGenerator::new(0xFEED);
    for salt in 0..25u64 {
        let program = generator.random_nonrecursive_program(salt, &ProgramConfig::default());
        let input = edb_instance(salt);
        let naive = Engine::new()
            .with_strategy(FixpointStrategy::Naive)
            .run(&program, &input)
            .unwrap_or_else(|e| panic!("salt {salt}: naive failed: {e}\n{program}"));
        let semi = Engine::new()
            .with_strategy(FixpointStrategy::SemiNaive)
            .run(&program, &input)
            .unwrap_or_else(|e| panic!("salt {salt}: semi-naive failed: {e}\n{program}"));
        for relation in program.idb_relations() {
            assert_eq!(
                tuples_of(&naive, relation),
                tuples_of(&semi, relation),
                "salt {salt}: strategies disagree on {relation}\n{program}"
            );
        }
    }
}

#[test]
fn equation_elimination_preserves_random_programs() {
    let generator = ProgramGenerator::new(0xBEEF);
    let config = ProgramConfig {
        allow_equations: true,
        allow_negation: true,
        allow_arity: true,
        ..ProgramConfig::default()
    };
    for salt in 0..20u64 {
        let program = generator.random_nonrecursive_program(salt, &config);
        if !FeatureSet::of_program(&program).equations {
            continue;
        }
        let rewritten = eliminate_equations(&program)
            .unwrap_or_else(|e| panic!("salt {salt}: elimination failed: {e}\n{program}"));
        assert!(
            !FeatureSet::of_program(&rewritten).equations,
            "salt {salt}: equations remain"
        );
        let output = output_relation(&program);
        let input = edb_instance(salt ^ 0x55);
        let a = Engine::new().run(&program, &input).unwrap();
        let b = Engine::new().run(&rewritten, &input).unwrap();
        assert_eq!(
            tuples_of(&a, output),
            tuples_of(&b, output),
            "salt {salt}: outputs differ\noriginal:\n{program}\nrewritten:\n{rewritten}"
        );
    }
}

#[test]
fn normal_form_preserves_random_equation_free_programs() {
    let generator = ProgramGenerator::new(0xCAFE);
    let config = ProgramConfig {
        allow_equations: false,
        allow_negation: true,
        allow_arity: true,
        ..ProgramConfig::default()
    };
    for salt in 0..20u64 {
        let program = generator.random_nonrecursive_program(salt, &config);
        let normal = to_normal_form(&program)
            .unwrap_or_else(|e| panic!("salt {salt}: normalization failed: {e}\n{program}"));
        let output = output_relation(&program);
        let input = edb_instance(salt ^ 0xAA);
        let a = Engine::new().run(&program, &input).unwrap();
        let b = Engine::new().run(&normal, &input).unwrap();
        assert_eq!(
            tuples_of(&a, output),
            tuples_of(&b, output),
            "salt {salt}: normal form changed the query\noriginal:\n{program}\nnormal:\n{normal}"
        );
    }
}

#[test]
fn algebra_translation_agrees_on_random_equation_free_programs() {
    let generator = ProgramGenerator::new(0xD00D);
    let config = ProgramConfig {
        strata: 2,
        rules_per_stratum: 2,
        allow_equations: false,
        allow_negation: true,
        allow_arity: true,
        allow_recursion: false,
    };
    let mut translated = 0;
    for salt in 0..20u64 {
        let program = generator.random_nonrecursive_program(salt, &config);
        let output = output_relation(&program);
        let expr = match datalog_to_algebra(&program, output) {
            Ok(expr) => expr,
            Err(e) => panic!("salt {salt}: algebra translation failed: {e}\n{program}"),
        };
        translated += 1;
        let input = edb_instance(salt ^ 0x33);
        let datalog: BTreeSet<Tuple> = {
            let result = Engine::new().run(&program, &input).unwrap();
            tuples_of(&result, output)
        };
        let algebra: BTreeSet<Tuple> = eval(&expr, &input)
            .unwrap_or_else(|e| panic!("salt {salt}: algebra evaluation failed: {e}\n{program}"))
            .into_iter()
            .collect();
        assert_eq!(
            datalog, algebra,
            "salt {salt}: algebra and Datalog disagree\n{program}"
        );
    }
    assert!(translated > 0);
}

#[test]
fn termination_analysis_certifies_random_nonrecursive_programs() {
    let generator = ProgramGenerator::new(0xACE);
    for salt in 0..25u64 {
        let program = generator.random_nonrecursive_program(salt, &ProgramConfig::default());
        assert!(
            guaranteed_terminating(&program),
            "salt {salt}: nonrecursive program not certified\n{program}"
        );
    }
}
