//! Differential tests for the paper's feature-elimination rewrites: every rewritten
//! program must compute the same query as the original on a battery of instances,
//! and must no longer use the eliminated feature.

use sequence_datalog::fragments::witnesses::{self, Witness};
use sequence_datalog::prelude::*;
use sequence_datalog::rewrite::{
    doubling_program, eliminate_arity, eliminate_equations, eliminate_packing_nonrecursive,
    eliminate_positive_equations, fold_intermediate_predicates, to_normal_form, undoubling_program,
};
use sequence_datalog::wgen::Workloads;

/// A battery of small flat unary instances over `R` that exercises empty paths,
/// repetitions, and random strings.
fn unary_battery() -> Vec<Instance> {
    let w = Workloads::new(0xB0B);
    let mut out = vec![
        Instance::unary(rel("R"), []),
        Instance::unary(rel("R"), [Path::empty()]),
        Instance::unary(rel("R"), [repeat_path("a", 1), repeat_path("a", 4)]),
        Instance::unary(rel("R"), [path_of(&["a", "b", "a"]), path_of(&["b", "b"])]),
        w.a_then_b(rel("R"), 3),
    ];
    for seed in 0..4u64 {
        let w = Workloads::new(seed);
        out.push(w.random_strings(rel("R"), 5, 6, 2));
    }
    out
}

/// Assert that `original` and `rewritten` compute the same query (output relation
/// `output`) on every instance in `inputs`.
fn assert_equivalent(
    original: &Program,
    rewritten: &Program,
    output: RelName,
    inputs: &[Instance],
    label: &str,
) {
    for (i, input) in inputs.iter().enumerate() {
        let a = run_unary_query(original, input, output)
            .unwrap_or_else(|e| panic!("{label}: original failed on input {i}: {e}"));
        let b = run_unary_query(rewritten, input, output)
            .unwrap_or_else(|e| panic!("{label}: rewritten failed on input {i}: {e}"));
        assert_eq!(a, b, "{label}: outputs differ on input {i}");
    }
}

fn feature_set(program: &Program) -> FeatureSet {
    FeatureSet::of_program(program)
}

// ---------------------------------------------------------------------------
// Theorem 4.2 — arity elimination
// ---------------------------------------------------------------------------

#[test]
fn arity_elimination_preserves_reversal() {
    let w = witnesses::reversal_with_arity();
    let rewritten = eliminate_arity(&w.program).expect("arity elimination succeeds");
    assert!(!feature_set(&rewritten).arity, "no arity after elimination");
    assert_equivalent(
        &w.program,
        &rewritten,
        w.output,
        &unary_battery(),
        "arity/reversal",
    );
}

#[test]
fn arity_elimination_preserves_squaring() {
    let w = witnesses::squaring();
    let rewritten = eliminate_arity(&w.program).expect("arity elimination succeeds");
    assert!(!feature_set(&rewritten).arity);
    let inputs: Vec<Instance> = (0..6usize)
        .map(|n| Instance::unary(rel("R"), [repeat_path("a", n)]))
        .collect();
    assert_equivalent(&w.program, &rewritten, w.output, &inputs, "arity/squaring");
}

#[test]
fn arity_elimination_preserves_only_as_intermediate() {
    let w = witnesses::only_as_intermediate();
    let rewritten = eliminate_arity(&w.program).expect("arity elimination succeeds");
    assert!(!feature_set(&rewritten).arity);
    assert_equivalent(
        &w.program,
        &rewritten,
        w.output,
        &unary_battery(),
        "arity/only-as",
    );
}

#[test]
fn arity_elimination_is_a_no_op_on_unary_programs() {
    let w = witnesses::only_as_equation();
    let rewritten = eliminate_arity(&w.program).expect("succeeds");
    assert!(!feature_set(&rewritten).arity);
    assert_equivalent(
        &w.program,
        &rewritten,
        w.output,
        &unary_battery(),
        "arity/no-op",
    );
}

// ---------------------------------------------------------------------------
// Theorem 4.7 — equation elimination (positive and negated)
// ---------------------------------------------------------------------------

#[test]
fn positive_equation_elimination_preserves_only_as() {
    let w = witnesses::only_as_equation();
    let rewritten = eliminate_positive_equations(&w.program).expect("succeeds");
    assert!(!feature_set(&rewritten).equations, "no equations left");
    assert_equivalent(
        &w.program,
        &rewritten,
        w.output,
        &unary_battery(),
        "eq+/only-as",
    );
}

#[test]
fn equation_elimination_preserves_only_as() {
    let w = witnesses::only_as_equation();
    let rewritten = eliminate_equations(&w.program).expect("succeeds");
    assert!(!feature_set(&rewritten).equations);
    assert_equivalent(
        &w.program,
        &rewritten,
        w.output,
        &unary_battery(),
        "eq/only-as",
    );
}

#[test]
fn negated_equation_elimination_preserves_mirrored_pairs() {
    // Example 4.6 / Lemma 4.5: the recursive rule with a nonequality.
    let w = witnesses::mirrored_distinct_pairs();
    let rewritten = eliminate_equations(&w.program).expect("succeeds");
    assert!(
        !feature_set(&rewritten).equations,
        "no equations after Lemma 4.5"
    );
    let inputs = vec![
        Instance::unary(rel("R"), []),
        Instance::unary(rel("R"), [Path::empty()]),
        Instance::unary(
            rel("R"),
            [
                path_of(&["a", "b", "c", "d"]),
                path_of(&["a", "b", "b", "a"]),
                path_of(&["x", "y"]),
                path_of(&["x", "x"]),
                path_of(&["x", "y", "z"]),
            ],
        ),
        Workloads::new(9).random_strings(rel("R"), 6, 6, 3),
    ];
    assert_equivalent(&w.program, &rewritten, w.output, &inputs, "eq-/mirrored");
}

#[test]
fn equation_elimination_preserves_policy_style_program() {
    // A two-equation rule with suffix matching, plus negation across strata.
    let program = parse_program(
        "HasPay($t, $v) <- Log($t), $t = $u·order·$v, $v = $w·pay·$z.\n\
         ---\n\
         Bad($t) <- Log($t), $t = $u·order·$v, !HasPay($t, $v).\n\
         ---\n\
         Good($t) <- Log($t), !Bad($t).",
    )
    .unwrap();
    let rewritten = eliminate_equations(&program).expect("succeeds");
    assert!(!feature_set(&rewritten).equations);
    let inputs = vec![
        Instance::unary(
            rel("Log"),
            [
                path_of(&["start", "order", "ship", "pay"]),
                path_of(&["start", "order", "ship"]),
                path_of(&["order", "pay", "order"]),
                path_of(&["ship", "close"]),
            ],
        ),
        Workloads::new(4).event_log(6, 5),
    ];
    assert_equivalent(&program, &rewritten, rel("Good"), &inputs, "eq/policy");
}

// ---------------------------------------------------------------------------
// Theorem 4.15 / Lemma 4.13 — packing elimination (non-recursive)
// ---------------------------------------------------------------------------

#[test]
fn packing_elimination_preserves_three_occurrences() {
    let w = witnesses::three_occurrences();
    let rewritten =
        eliminate_packing_nonrecursive(&w.program, w.output).expect("packing elimination");
    assert!(!feature_set(&rewritten).packing, "no packing left");

    let make = |r: &[&str], s: &[&str]| {
        let mut inst = Instance::new();
        inst.declare_relation(rel("R"), 1);
        inst.declare_relation(rel("S"), 1);
        for p in r {
            inst.insert_fact(Fact::new(
                rel("R"),
                vec![path_of(&p.split('·').collect::<Vec<_>>())],
            ))
            .unwrap();
        }
        for p in s {
            inst.insert_fact(Fact::new(
                rel("S"),
                vec![path_of(&p.split('·').collect::<Vec<_>>())],
            ))
            .unwrap();
        }
        inst
    };
    let inputs = [
        make(&["a·b·a·b·a·b"], &["a·b"]),
        make(&["a·b·a·b"], &["a·b"]),
        make(&["a·a·a·a"], &["a"]),
        make(&["x·y", "y·x", "x·x"], &["x"]),
        make(&[], &["a"]),
    ];
    for (i, input) in inputs.iter().enumerate() {
        let a = run_boolean_query(&w.program, input, w.output).unwrap();
        let b = run_boolean_query(&rewritten, input, w.output).unwrap();
        assert_eq!(a, b, "packing/three-occurrences differ on input {i}");
    }
}

#[test]
fn packing_elimination_preserves_simple_packing_program() {
    // Mark every string that contains some S-string as a bracketed substring, then
    // extract the prefix before the bracket.
    let program = parse_program(
        "T($u·<$s>·$v) <- R($u·$s·$v), S($s).\n\
         ---\n\
         Out($u) <- T($u·<$s>·$v), S($s).",
    )
    .unwrap();
    let rewritten = eliminate_packing_nonrecursive(&program, rel("Out")).expect("succeeds");
    assert!(!feature_set(&rewritten).packing);

    let mut input = Instance::new();
    input.declare_relation(rel("R"), 1);
    input.declare_relation(rel("S"), 1);
    input
        .insert_fact(Fact::new(rel("R"), vec![path_of(&["x", "a", "b", "y"])]))
        .unwrap();
    input
        .insert_fact(Fact::new(rel("R"), vec![path_of(&["a", "b"])]))
        .unwrap();
    input
        .insert_fact(Fact::new(rel("S"), vec![path_of(&["a", "b"])]))
        .unwrap();
    let a = run_unary_query(&program, &input, rel("Out")).unwrap();
    let b = run_unary_query(&rewritten, &input, rel("Out")).unwrap();
    assert_eq!(a, b);
    assert!(a.contains(&path_of(&["x"])));
    assert!(a.contains(&Path::empty()));
}

#[test]
fn packing_elimination_rejects_recursive_programs() {
    let program = parse_program("T(<$x>) <- R($x).\nT(<$x>) <- T($x).\nS($x) <- T($x).").unwrap();
    let err = eliminate_packing_nonrecursive(&program, rel("S"));
    assert!(
        err.is_err(),
        "recursive packing elimination is explicitly unsupported"
    );
}

#[test]
fn doubling_then_undoubling_is_identity_on_flat_relations() {
    // Theorem 4.15's pre/post-processing: doubling R into R2 and undoubling back
    // into R3 must reproduce the original paths.
    let doubling = doubling_program(rel("R"), rel("R2"));
    let undoubling = undoubling_program(rel("R2"), rel("R3"));
    assert!(
        !FeatureSet::of_program(&doubling).negation,
        "doubling avoids negation"
    );
    assert!(
        !FeatureSet::of_program(&undoubling).negation,
        "undoubling avoids negation"
    );

    for input in unary_battery() {
        let doubled = Engine::new()
            .run(&doubling, &input)
            .expect("doubling terminates");
        // Every doubled path has even length, twice the original.
        let orig = input.unary_paths(rel("R"));
        let dbl = doubled.unary_paths(rel("R2"));
        assert_eq!(orig.len(), dbl.len());
        for p in &dbl {
            assert_eq!(p.len() % 2, 0);
        }
        // Feed the doubled relation back through undoubling.
        let mid = Instance::unary(rel("R2"), dbl);
        let restored = Engine::new()
            .run(&undoubling, &mid)
            .expect("undoubling terminates");
        assert_eq!(restored.unary_paths(rel("R3")), orig);
    }
}

// ---------------------------------------------------------------------------
// Theorem 4.16 — intermediate-predicate folding
// ---------------------------------------------------------------------------

#[test]
fn folding_eliminates_intermediate_predicates() {
    let w = witnesses::only_as_intermediate();
    let folded = fold_intermediate_predicates(&w.program, w.output).expect("folding succeeds");
    assert!(
        !FeatureSet::of_program(&folded).intermediate,
        "a single IDB relation remains after folding"
    );
    assert_equivalent(
        &w.program,
        &folded,
        w.output,
        &unary_battery(),
        "fold/only-as",
    );
}

#[test]
fn folding_preserves_a_three_stage_pipeline() {
    // A nonrecursive pipeline with three IDB relations and no negation.
    let program = parse_program(
        "A($x·$x) <- R($x).\n\
         B($x·c) <- A($x).\n\
         Out($y) <- B(d·$y).",
    )
    .unwrap();
    let folded = fold_intermediate_predicates(&program, rel("Out")).expect("folding succeeds");
    assert!(!FeatureSet::of_program(&folded).intermediate);
    let inputs = vec![
        Instance::unary(
            rel("R"),
            [path_of(&["d"]), path_of(&["d", "e"]), path_of(&["e"])],
        ),
        Instance::unary(rel("R"), [Path::empty()]),
        Workloads::new(11).random_strings(rel("R"), 6, 4, 3),
    ];
    assert_equivalent(&program, &folded, rel("Out"), &inputs, "fold/pipeline");
}

#[test]
fn folding_rejects_recursive_programs() {
    let w = witnesses::squaring();
    assert!(fold_intermediate_predicates(&w.program, w.output).is_err());
}

// ---------------------------------------------------------------------------
// Lemma 7.2 — normal form
// ---------------------------------------------------------------------------

#[test]
fn normal_form_preserves_equation_free_programs() {
    use sequence_datalog::rewrite::classify_rule;
    let cases: Vec<(&str, &str)> = vec![
        ("T(a·$x, $x) <- R($x).\nS($x) <- T($x·a, $x).", "S"),
        ("S($y·$x) <- R($x·$y), Q($y).", "S"),
        (
            "W(@x) <- R(@x·@y), !B(@y).\n---\nS(@x) <- R(@x·@y), !W(@x).",
            "S",
        ),
    ];
    for (src, out) in cases {
        let program = parse_program(src).unwrap();
        let normal = to_normal_form(&program).expect("normalization succeeds");
        for rule in normal.rules() {
            assert!(
                classify_rule(rule).is_some(),
                "rule `{rule}` is not in one of the six normal forms"
            );
        }
        let mut inputs = unary_battery();
        // Provide Q and B relations for the cases that need them.
        for inst in &mut inputs {
            inst.declare_relation(rel("Q"), 1);
            inst.insert_fact(Fact::new(rel("Q"), vec![path_of(&["a"])]))
                .unwrap();
            inst.declare_relation(rel("B"), 1);
            inst.insert_fact(Fact::new(rel("B"), vec![path_of(&["a"])]))
                .unwrap();
        }
        assert_equivalent(&program, &normal, rel(out), &inputs, "normal-form");
    }
}

// ---------------------------------------------------------------------------
// Figure 3 / Theorem 6.1 — constructive fragment rewriting
// ---------------------------------------------------------------------------

#[test]
fn rewrite_into_moves_witnesses_into_subsuming_fragments() {
    use sequence_datalog::fragments::rewrite_into;
    let interesting: Vec<Witness> = vec![
        witnesses::only_as_equation(),
        witnesses::only_as_intermediate(),
        witnesses::reversal_with_arity(),
    ];
    for w in interesting {
        let source = Fragment::of_program(&w.program);
        for target in Fragment::all_over_einr() {
            if !subsumed_by(source, target) {
                continue;
            }
            let rewritten = rewrite_into(&w.program, w.output, target)
                .unwrap_or_else(|e| panic!("{}: rewrite into {target} failed: {e}", w.name));
            // A and P are redundant, so compare modulo them (Fragment::hat).
            let result = Fragment::of_program(&rewritten).hat();
            assert!(
                result.is_subset_of(target),
                "{}: rewriting into {target} produced fragment {result}",
                w.name
            );
            assert_equivalent(
                &w.program,
                &rewritten,
                w.output,
                &unary_battery(),
                &format!("{} -> {target}", w.name),
            );
        }
    }
}
