//! Regression test for the unbounded-store hazard: the backtracking matcher's
//! enumerated prefix cuts must be *views* into the parent path, interned only
//! when a fact is actually emitted — never speculatively.
//!
//! The adversarial program joins two adjacent path variables against a path
//! with no `b` in it: `A($x) <- R($x·$y·b·$y).` on `R = {a^L}` forces the
//! matcher to enumerate every `(start, end)` split for `$x` and `$y` — Θ(L²)
//! candidate cuts — and reject all of them (zero facts emitted).  If those
//! cuts were interned, the global path store would grow by Θ(L²) distinct
//! subpaths; with views it grows by O(1).
//!
//! This file is deliberately its own integration-test binary: the path store
//! is process-global, so the byte accounting must not share a process with
//! unrelated tests.

use sequence_datalog::engine::Engine;
use sequence_datalog::prelude::{parse_program, rel, repeat_path, Instance};

#[test]
fn rejected_prefix_cuts_do_not_grow_the_store() {
    const L: usize = 256;
    let program = parse_program("A($x) <- R($x·$y·b·$y).").unwrap();
    // Interning a^L (and the program's atoms) happens before the measurement.
    let input = Instance::unary(rel("R"), [repeat_path("a", L)]);

    let before = sequence_datalog::core::store_stats();
    // Run through both execution paths: the RAM interpreter and the legacy
    // tree-walking matcher both enumerate the adversarial cuts.
    let out_ram = Engine::new().run(&program, &input).unwrap();
    let out_legacy = Engine::new().with_ram(false).run(&program, &input).unwrap();
    let after = sequence_datalog::core::store_stats();

    // No fact matches (there is no `b`), so nothing should be emitted...
    assert!(out_ram.unary_paths(rel("A")).is_empty());
    assert_eq!(out_ram, out_legacy);

    // ...and nothing should have been interned.  The old behaviour interned a
    // distinct subpath per speculative cut: Θ(L²/2) ≈ 32k paths at L = 256.
    // Views keep the growth constant; the bound below leaves two orders of
    // magnitude of slack while still catching any O(L²) (or even O(L))
    // regression.
    let grown_paths = after.distinct_paths - before.distinct_paths;
    let grown_bytes = after.total_bytes().saturating_sub(before.total_bytes());
    // Printed so CI can archive the regression numbers (`--nocapture`).
    println!("adversarial-store: L={L} grown_paths={grown_paths} grown_bytes={grown_bytes}");
    assert!(
        grown_paths < 16,
        "speculative cuts were interned: {grown_paths} new paths \
         (before {before:?}, after {after:?})"
    );
    assert!(
        grown_bytes < 64 * 1024,
        "store grew by {grown_bytes} bytes on a zero-emission run \
         (before {before:?}, after {after:?})"
    );
}

#[test]
fn emitted_facts_still_intern_their_cuts() {
    // The positive control: with a `b` present the join succeeds, and the
    // emitted bindings must be real interned paths.
    let program = parse_program("A($x) <- R($x·$y·b·$y).").unwrap();
    let mut values = vec!["a"; 6];
    values.push("b");
    values.extend(["a"; 3]);
    // a^6 · b · a^3: $x = a^3, $y = a^3 is the unique solution.
    let input = Instance::unary(rel("R"), [sequence_datalog::prelude::path_of(&values)]);
    let out = Engine::new().run(&program, &input).unwrap();
    let a = out.unary_paths(rel("A"));
    assert_eq!(a.len(), 1);
    assert!(a.contains(&repeat_path("a", 3)));
}
