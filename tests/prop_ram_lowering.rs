//! wgen-driven differential property test for the RAM lowering: compiling
//! planned rules to the flat instruction IR and running them on the shared
//! interpreter must derive exactly what the legacy tree-walking matcher
//! derives — on random safe, stratified programs with recursion and negation,
//! under the sequential engine and the parallel executor at one and four
//! threads, and through the demand-driven (magic-set) query path.
//!
//! This guards the whole lowering: bound-set propagation, probe/equation
//! fusion, terminal probe+emit fusion, static-rule hoisting, and the
//! interpreter's frame machine (candidate selection, delta-window clamping,
//! bucket-side fast path, buffered extension replay, backtracking).

use proptest::prelude::*;
use sequence_datalog::exec::Executor;
use sequence_datalog::prelude::*;
use sequence_datalog::rewrite::magic;
use sequence_datalog::wgen::{ProgramConfig, ProgramGenerator, Workloads};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ram_execution_equals_the_legacy_matcher(
        seed in 0u64..(1u64 << 32),
        salt in 0u64..(1u64 << 32),
        goal_salt in 0u64..(1u64 << 32),
        allow_equations in any::<bool>(),
        allow_negation in any::<bool>(),
        allow_arity in any::<bool>(),
    ) {
        let config = ProgramConfig {
            allow_equations,
            allow_negation,
            allow_arity,
            allow_recursion: true,
            ..ProgramConfig::default()
        };
        let generator = ProgramGenerator::new(seed);
        let program = generator.random_program(salt, &config);
        let mut input = Workloads::new(seed ^ salt).random_flat_instance(2, 3, 4, 2);
        input.declare_relation(rel("R0"), 1);
        input.declare_relation(rel("R1"), 1);

        let legacy = Engine::new()
            .with_ram(false)
            .run(&program, &input)
            .unwrap_or_else(|e| panic!("legacy run failed: {e}\n{program}"));
        let ram = Engine::new()
            .run(&program, &input)
            .unwrap_or_else(|e| panic!("RAM run failed: {e}\n{program}"));
        prop_assert_eq!(&legacy, &ram, "engine RAM vs legacy on\n{}", &program);

        for threads in [1usize, 4] {
            let out = Executor::new()
                .with_threads(threads)
                .run(&program, &input)
                .unwrap_or_else(|e| panic!("RAM executor run failed: {e}\n{program}"));
            prop_assert_eq!(
                &legacy,
                &out,
                "executor (RAM, threads = {}) vs legacy engine on\n{}",
                threads,
                &program
            );
        }

        // The demand-driven path: magic-rewritten programs exercise seeded
        // fixpoints, guard predicates, and deeper join chains.
        let output = program
            .strata
            .last()
            .and_then(|s| s.rules.last())
            .map(|r| r.head.clone())
            .expect("generated programs have rules");
        let goal = generator.random_goal(goal_salt, output.relation, output.arity());
        let mp = magic(&program, &goal)
            .unwrap_or_else(|e| panic!("magic failed for goal {goal}: {e}\n{program}"));
        let legacy_answers = Engine::new()
            .with_ram(false)
            .run_seeded(&mp.program, &input, &mp.seeds)
            .map(|out| mp.answers(&out))
            .unwrap_or_else(|e| panic!("legacy seeded run failed: {e}\n{}", mp.program));
        let ram_answers = Engine::new()
            .run_seeded(&mp.program, &input, &mp.seeds)
            .map(|out| mp.answers(&out))
            .unwrap_or_else(|e| panic!("RAM seeded run failed: {e}\n{}", mp.program));
        prop_assert_eq!(
            &legacy_answers,
            &ram_answers,
            "magic RAM vs legacy: goal {} on\n{}",
            &goal,
            &mp.program
        );
        for threads in [1usize, 4] {
            let out = Executor::new()
                .with_threads(threads)
                .run_seeded(&mp.program, &input, &mp.seeds)
                .map(|out| mp.answers(&out))
                .unwrap_or_else(|e| panic!("RAM seeded executor failed: {e}\n{}", mp.program));
            prop_assert_eq!(
                &legacy_answers,
                &out,
                "magic executor (RAM, threads = {}): goal {} on\n{}",
                threads,
                &goal,
                &mp.program
            );
        }
    }
}

/// A static rule inside a recursive component fires exactly one pass: its
/// firings equal the input size, not input × rounds — same count as the
/// legacy matcher, pinned here so hoisting stays observable in the stats.
#[test]
fn hoisted_static_rules_fire_one_pass() {
    let program = parse_program("T($x) <- R($x).\nT($y) <- T(@u·$y).").unwrap();
    let paths: Vec<_> = (0..10)
        .map(|i| path_of(&[&format!("a{i}"), &format!("b{i}"), &format!("c{i}")]))
        .collect();
    let input = Instance::unary(rel("R"), paths);
    for use_ram in [true, false] {
        let engine = Engine::new().with_ram(use_ram);
        let (out, stats) = engine.run_with_stats(&program, &input).unwrap();
        // 10 base paths + their 20 distinct proper suffixes + ε.
        assert_eq!(out.unary_paths(rel("T")).len(), 31, "ram = {use_ram}");
        // One static pass (10 firings) + 30 recursive firings across the
        // fixpoint rounds.  Re-firing the static rule every productive round
        // would show as ≥ 70.
        assert_eq!(stats.rule_firings, 40, "ram = {use_ram}: {stats:?}");
        assert_eq!(stats.iterations, 5, "ram = {use_ram}: {stats:?}");
    }
}

/// RAM runs at 1, 2, and 4 threads produce identical instances on the §5.1.1
/// reachability program, and match the legacy matcher exactly.
#[test]
fn reachability_identical_across_thread_counts() {
    let program =
        parse_program("T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).\nS <- T(a·b).")
            .unwrap();
    let mut input = Instance::new();
    for (x, y) in [("a", "c"), ("c", "b"), ("b", "d"), ("d", "a"), ("c", "e")] {
        input
            .insert_fact(Fact::new(rel("R"), vec![path_of(&[x, y])]))
            .unwrap();
    }
    let legacy = Engine::new().with_ram(false).run(&program, &input).unwrap();
    for threads in [1usize, 2, 4] {
        let out = Executor::new()
            .with_threads(threads)
            .run(&program, &input)
            .unwrap();
        assert_eq!(legacy, out, "threads = {threads}");
    }
}
