//! End-to-end integration tests running every worked example of the paper through
//! the parser, the analyses, and the evaluation engine.

use sequence_datalog::engine::error::LimitKind;
use sequence_datalog::engine::EvalError;
use sequence_datalog::fragments::witnesses;
use sequence_datalog::prelude::*;

fn ab_path(spec: &str) -> Path {
    path_of(
        &spec
            .split('·')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>(),
    )
}

/// Example 2.1 — NFA acceptance.  We hand-build the NFA accepting `(ab)^+` and check
/// that exactly the accepted strings from `R` end up in `A`.
#[test]
fn example_2_1_nfa_acceptance() {
    let witness = witnesses::nfa_acceptance();
    let mut input = Instance::new();
    // States: q0 (initial), q1; accepting state q0 after at least one "ab"? Use q2 as
    // final to keep it simple: q0 --a--> q1 --b--> q2, q2 --a--> q1.
    input.declare_relation(rel("N"), 1);
    input.declare_relation(rel("F"), 1);
    input.declare_relation(rel("D"), 3);
    input.declare_relation(rel("R"), 1);
    input
        .insert_fact(Fact::new(rel("N"), vec![path_of(&["q0"])]))
        .unwrap();
    input
        .insert_fact(Fact::new(rel("F"), vec![path_of(&["q2"])]))
        .unwrap();
    for (from, sym, to) in [("q0", "a", "q1"), ("q1", "b", "q2"), ("q2", "a", "q1")] {
        input
            .insert_fact(Fact::new(
                rel("D"),
                vec![path_of(&[from]), path_of(&[sym]), path_of(&[to])],
            ))
            .unwrap();
    }
    for s in ["a·b", "a·b·a·b", "a", "b·a", "a·b·a", ""] {
        input
            .insert_fact(Fact::new(rel("R"), vec![ab_path(s)]))
            .unwrap();
    }

    let output = Engine::new()
        .run(&witness.program, &input)
        .expect("terminates");
    let accepted = output.unary_paths(witness.output);
    assert!(accepted.contains(&ab_path("a·b")));
    assert!(accepted.contains(&ab_path("a·b·a·b")));
    assert!(!accepted.contains(&ab_path("a")));
    assert!(!accepted.contains(&ab_path("b·a")));
    assert!(!accepted.contains(&ab_path("a·b·a")));
    assert!(!accepted.contains(&Path::empty()));
    assert_eq!(accepted.len(), 2);
}

/// Example 2.2 — "at least three different occurrences of an S-string inside R-strings",
/// using packing and nonequalities.
#[test]
fn example_2_2_three_occurrences() {
    let witness = witnesses::three_occurrences();

    // "abab a" contains "ab" at two positions; adding "abab·ab" gives >= 3 distinct
    // packed occurrences overall.
    let mut yes = Instance::new();
    yes.declare_relation(rel("R"), 1);
    yes.declare_relation(rel("S"), 1);
    yes.insert_fact(Fact::new(rel("R"), vec![ab_path("a·b·a·b·a·b")]))
        .unwrap();
    yes.insert_fact(Fact::new(rel("S"), vec![ab_path("a·b")]))
        .unwrap();
    let out = Engine::new()
        .run(&witness.program, &yes)
        .expect("terminates");
    assert!(out.nullary_true(witness.output), "three occurrences exist");

    // Only two occurrences: a·b·a·b.
    let mut no = Instance::new();
    no.declare_relation(rel("R"), 1);
    no.declare_relation(rel("S"), 1);
    no.insert_fact(Fact::new(rel("R"), vec![ab_path("a·b·a·b")]))
        .unwrap();
    no.insert_fact(Fact::new(rel("S"), vec![ab_path("a·b")]))
        .unwrap();
    let out = Engine::new()
        .run(&witness.program, &no)
        .expect("terminates");
    assert!(!out.nullary_true(witness.output), "only two occurrences");
}

/// Example 2.3 — the two-rule program `T(a).  T(a·$x) <- T($x).` does not terminate;
/// the engine must stop at a resource limit instead of diverging.
#[test]
fn example_2_3_nonterminating_program_hits_a_limit() {
    let program = parse_program("T(a).\nT(a·$x) <- T($x).").expect("parses");
    let limits = EvalLimits {
        max_iterations: 50,
        max_facts: 10_000,
        max_path_len: 64,
        ..EvalLimits::default()
    };
    let engine = Engine::new().with_limits(limits);
    let err = engine
        .run(&program, &Instance::new())
        .expect_err("must not terminate normally");
    match err {
        EvalError::LimitExceeded { what, .. } => {
            assert!(matches!(
                what,
                LimitKind::Iterations | LimitKind::Facts | LimitKind::PathLength
            ));
        }
        other => panic!("expected LimitExceeded, got {other:?}"),
    }
}

/// Example 3.1 — "only a's" expressed in {E}, {A,I,R} and {A,I} (Example 4.4) all
/// compute the same query.
#[test]
fn example_3_1_only_as_three_ways_agree() {
    let variants = [
        witnesses::only_as_equation(),
        witnesses::only_as_recursion(),
        witnesses::only_as_intermediate(),
    ];
    let input = Instance::unary(
        rel("R"),
        [
            repeat_path("a", 7),
            repeat_path("a", 1),
            Path::empty(),
            ab_path("a·b·a"),
            ab_path("b"),
            repeat_path("b", 4),
        ],
    );
    let expected: Vec<Path> = vec![Path::empty(), repeat_path("a", 1), repeat_path("a", 7)];
    for w in variants {
        let got = run_unary_query(&w.program, &input, w.output).expect("terminates");
        assert_eq!(
            got.into_iter().collect::<Vec<_>>(),
            expected,
            "witness {} disagrees",
            w.name
        );
    }
}

/// Example 4.3 — reversal with arity and the arity-free pairing-encoded version agree.
#[test]
fn example_4_3_reversal_variants_agree() {
    let with_arity = witnesses::reversal_with_arity();
    let without_arity = witnesses::reversal_without_arity();
    let input = Instance::unary(
        rel("R"),
        [
            ab_path("x·y·z"),
            ab_path("p·q"),
            Path::empty(),
            ab_path("m"),
        ],
    );
    let a = run_unary_query(&with_arity.program, &input, with_arity.output).unwrap();
    let b = run_unary_query(&without_arity.program, &input, without_arity.output).unwrap();
    assert_eq!(a, b);
    assert!(a.contains(&ab_path("z·y·x")));
    assert!(a.contains(&ab_path("q·p")));
    assert!(a.contains(&Path::empty()));
    assert!(a.contains(&ab_path("m")));
}

/// Example 4.6 — strings of the form `a1…an·bn…b1` with `ai ≠ bi` for every i.
#[test]
fn example_4_6_mirrored_distinct_pairs() {
    let w = witnesses::mirrored_distinct_pairs();
    let input = Instance::unary(
        rel("R"),
        [
            ab_path("a·b·c·d"), // pairs (a,d), (b,c) — all distinct => accepted
            ab_path("a·b·b·a"), // pairs (a,a), (b,b) — equal => rejected
            ab_path("a·b·b·c"), // pairs (a,c) ok, (b,b) equal => rejected
            Path::empty(),      // n = 0 => accepted (vacuously)
            ab_path("x·y"),     // pair (x,y) distinct => accepted
            ab_path("x·x"),     // pair (x,x) => rejected
            ab_path("x·y·z"),   // odd length => rejected
        ],
    );
    let got = run_unary_query(&w.program, &input, w.output).unwrap();
    assert!(got.contains(&ab_path("a·b·c·d")));
    assert!(got.contains(&Path::empty()));
    assert!(got.contains(&ab_path("x·y")));
    assert!(!got.contains(&ab_path("a·b·b·a")));
    assert!(!got.contains(&ab_path("a·b·b·c")));
    assert!(!got.contains(&ab_path("x·x")));
    assert!(!got.contains(&ab_path("x·y·z")));
    assert_eq!(got.len(), 3);
}

/// Theorem 5.3 — the squaring query outputs `a^(n²)` for input `R(a^n)`.
#[test]
fn theorem_5_3_squaring_query() {
    let w = witnesses::squaring();
    for n in [0usize, 1, 2, 3, 5, 8] {
        let input = Instance::unary(rel("R"), [repeat_path("a", n)]);
        let out = run_unary_query(&w.program, &input, w.output).unwrap();
        assert!(
            out.contains(&repeat_path("a", n * n)),
            "a^{} missing from output for n = {n}",
            n * n
        );
        // The output is exactly the prefix-closure steps of the construction; the
        // longest path must be exactly n².
        let max = out.iter().map(Path::len).max().unwrap_or(0);
        assert_eq!(max, n * n, "longest output path is n² for n = {n}");
    }
}

/// Section 5.1.1 — graph reachability a →* b on length-2-path-encoded edges.
#[test]
fn section_5_1_1_reachability() {
    let w = witnesses::reachability();
    // Graph: a -> c -> d -> b  plus an irrelevant edge e -> f.
    let edges = |pairs: &[(&str, &str)]| {
        Instance::unary(
            rel("R"),
            pairs
                .iter()
                .map(|(x, y)| path_of(&[*x, *y]))
                .collect::<Vec<_>>(),
        )
    };
    let reachable = edges(&[("a", "c"), ("c", "d"), ("d", "b"), ("e", "f")]);
    assert!(run_boolean_query(&w.program, &reachable, w.output).unwrap());

    let unreachable = edges(&[("a", "c"), ("d", "b"), ("e", "f")]);
    assert!(!run_boolean_query(&w.program, &unreachable, w.output).unwrap());

    // Direct edge.
    let direct = edges(&[("a", "b")]);
    assert!(run_boolean_query(&w.program, &direct, w.output).unwrap());

    // Cycle not involving b.
    let cycle = edges(&[("a", "c"), ("c", "a")]);
    assert!(!run_boolean_query(&w.program, &cycle, w.output).unwrap());
}

/// Section 5.2 — "nodes all of whose successors are black" ({I, N} witness).
#[test]
fn section_5_2_only_black_successors() {
    let w = witnesses::only_black_successors();
    let mut input = Instance::new();
    input.declare_relation(rel("R"), 1);
    input.declare_relation(rel("B"), 1);
    // Edges: a -> b1, a -> b2 (both black);  c -> b1, c -> w1 (one white);
    //        d -> w1 (white only).
    for (x, y) in [
        ("a", "b1"),
        ("a", "b2"),
        ("c", "b1"),
        ("c", "w1"),
        ("d", "w1"),
    ] {
        input
            .insert_fact(Fact::new(rel("R"), vec![path_of(&[x, y])]))
            .unwrap();
    }
    for b in ["b1", "b2"] {
        input
            .insert_fact(Fact::new(rel("B"), vec![path_of(&[b])]))
            .unwrap();
    }
    let got = run_unary_query(&w.program, &input, w.output).unwrap();
    assert!(
        got.contains(&path_of(&["a"])),
        "all of a's successors are black"
    );
    assert!(!got.contains(&path_of(&["c"])), "c has a white successor");
    assert!(
        !got.contains(&path_of(&["d"])),
        "d has only white successors"
    );
    assert_eq!(got.len(), 1);
}

/// Every witness program advertises a fragment consistent with its actual features,
/// and all witnesses parse, are safe, and are stratified.
#[test]
fn witnesses_are_well_formed_and_runnable() {
    use sequence_datalog::syntax::analysis::{check_safety, check_stratification};
    for w in witnesses::all_witnesses() {
        check_safety(&w.program).unwrap_or_else(|e| panic!("{}: unsafe: {e}", w.name));
        check_stratification(&w.program)
            .unwrap_or_else(|e| panic!("{}: not stratified: {e}", w.name));
        assert!(
            w.program.idb_relations().contains(&w.output),
            "{}: output relation is an IDB relation",
            w.name
        );
    }
}

/// The introduction's JSON "Sales" restructuring: swapping the first two elements of
/// every item·year·value path groups sales by year instead of by item.
#[test]
fn introduction_sales_restructuring() {
    let program = parse_program("ByYear(@y·@i·$v) <- Sales(@i·@y·$v).").expect("parses");
    let input = Instance::unary(
        rel("Sales"),
        [
            path_of(&["shoe", "2020", "17"]),
            path_of(&["shoe", "2021", "23"]),
            path_of(&["hat", "2020", "5"]),
        ],
    );
    let got = run_unary_query(&program, &input, rel("ByYear")).unwrap();
    assert_eq!(got.len(), 3);
    assert!(got.contains(&path_of(&["2020", "shoe", "17"])));
    assert!(got.contains(&path_of(&["2021", "shoe", "23"])));
    assert!(got.contains(&path_of(&["2020", "hat", "5"])));
}

/// The introduction's process-mining policy: every occurrence of `order` is eventually
/// followed by `pay`.  Expressed with negation over a violation relation.
#[test]
fn introduction_process_mining_policy() {
    let program = parse_program(
        "HasPay($t, $v) <- Log($t), $t = $u·order·$v, $v = $w·pay·$z.\n\
         ---\n\
         Bad($t) <- Log($t), $t = $u·order·$v, !HasPay($t, $v).\n\
         ---\n\
         Good($t) <- Log($t), !Bad($t).",
    )
    .expect("parses");
    let input = Instance::unary(
        rel("Log"),
        [
            path_of(&["start", "order", "ship", "pay"]),
            path_of(&["start", "order", "ship"]),
            path_of(&["start", "ship", "close"]),
            path_of(&["order", "pay", "order", "pay"]),
            path_of(&["order", "pay", "order"]),
        ],
    );
    let got = run_unary_query(&program, &input, rel("Good")).unwrap();
    assert!(got.contains(&path_of(&["start", "order", "ship", "pay"])));
    assert!(got.contains(&path_of(&["start", "ship", "close"])));
    assert!(got.contains(&path_of(&["order", "pay", "order", "pay"])));
    assert!(!got.contains(&path_of(&["start", "order", "ship"])));
    assert!(!got.contains(&path_of(&["order", "pay", "order"])));
    assert_eq!(got.len(), 3);
}

/// Deep equality of two sets of sequences (the introduction's JSON deep-equal
/// motivation): R and S are deep-equal iff neither contains a path missing from the
/// other.
#[test]
fn introduction_deep_equality() {
    let program = parse_program(
        "OnlyR($x) <- R($x), !S($x).\nOnlyS($x) <- S($x), !R($x).\n\
         ---\n\
         Diff <- OnlyR($x).\nDiff <- OnlyS($x).\n\
         ---\n\
         Eq <- !Diff, R($x).",
    )
    .expect("parses");
    let mut equal = Instance::new();
    equal.declare_relation(rel("R"), 1);
    equal.declare_relation(rel("S"), 1);
    for r in ["a·b", "c"] {
        equal
            .insert_fact(Fact::new(rel("R"), vec![ab_path(r)]))
            .unwrap();
        equal
            .insert_fact(Fact::new(rel("S"), vec![ab_path(r)]))
            .unwrap();
    }
    assert!(run_boolean_query(&program, &equal, rel("Eq")).unwrap());

    let mut unequal = Instance::new();
    unequal.declare_relation(rel("R"), 1);
    unequal.declare_relation(rel("S"), 1);
    unequal
        .insert_fact(Fact::new(rel("R"), vec![ab_path("a·b")]))
        .unwrap();
    unequal
        .insert_fact(Fact::new(rel("S"), vec![ab_path("a")]))
        .unwrap();
    assert!(!run_boolean_query(&program, &unequal, rel("Eq")).unwrap());
}
