//! Property tests for the static-analysis framework: `strip_dead` is a
//! semantics-preserving rewrite (relative to the declared output), the
//! checker reports every defect the workload generator injects, and the
//! pruning is observable in the RAM instruction counter.

use sequence_datalog::analysis::{check_program, CheckOptions, Lint, Severity};
use sequence_datalog::core::Tuple;
use sequence_datalog::exec::Executor;
use sequence_datalog::prelude::*;
use sequence_datalog::rewrite::{nonempty_relations, strip_dead, strip_dead_with_edb};
use sequence_datalog::wgen::{ProgramConfig, ProgramGenerator, Workloads};
use std::collections::BTreeSet;

/// The conventional output relation: the head of the last rule of the last
/// stratum (what the CLI defaults to).
fn output_relation(program: &Program) -> RelName {
    program
        .strata
        .last()
        .and_then(|s| s.rules.last())
        .map(|r| r.head.relation)
        .expect("generated programs have rules")
}

/// A small random instance over the generator's EDB schema `{R0/1, R1/1}`.
fn edb_instance(seed: u64) -> Instance {
    let w = Workloads::new(seed);
    let mut instance = w.random_flat_instance(2, 3, 4, 2);
    instance.declare_relation(rel("R0"), 1);
    instance.declare_relation(rel("R1"), 1);
    instance
}

fn tuples_of(result: &Instance, relation: RelName) -> BTreeSet<Tuple> {
    result
        .relation(relation)
        .map(|r| r.tuples().into_iter().collect())
        .unwrap_or_default()
}

/// Render a relation's tuples as sorted text, for byte-identical comparison.
fn render(result: &Instance, relation: RelName) -> String {
    let mut lines: Vec<String> = tuples_of(result, relation)
        .iter()
        .map(|t| {
            let args: Vec<String> = t.iter().map(ToString::to_string).collect();
            format!("{relation}({})", args.join(", "))
        })
        .collect();
    lines.sort();
    lines.join("\n")
}

#[test]
fn strip_dead_preserves_the_output_on_random_programs() {
    let generator = ProgramGenerator::new(0x5717);
    let config = ProgramConfig {
        allow_negation: true,
        allow_equations: true,
        allow_arity: true,
        allow_recursion: true,
        ..ProgramConfig::default()
    };
    for salt in 0..30u64 {
        let program = generator.random_program(salt, &config);
        let output = output_relation(&program);
        let outputs: BTreeSet<RelName> = [output].into_iter().collect();
        let input = edb_instance(salt ^ 0x9E);
        let stripped = strip_dead_with_edb(&program, &outputs, Some(&nonempty_relations(&input)));

        let reference = Engine::new()
            .run(&program, &input)
            .unwrap_or_else(|e| panic!("salt {salt}: original failed: {e}\n{program}"));
        let pruned = Engine::new()
            .run(&stripped.program, &input)
            .unwrap_or_else(|e| panic!("salt {salt}: stripped failed: {e}\n{}", stripped.program));
        assert_eq!(
            tuples_of(&reference, output),
            tuples_of(&pruned, output),
            "salt {salt}: strip_dead changed the output\noriginal:\n{program}\nstripped:\n{}",
            stripped.program
        );
        // The parallel executor agrees at 1 and 4 threads.
        for threads in [1usize, 4] {
            let exec = Executor::new()
                .with_threads(threads)
                .run(&stripped.program, &input)
                .unwrap_or_else(|e| panic!("salt {salt}: {threads}-thread run failed: {e}"));
            assert_eq!(
                tuples_of(&reference, output),
                tuples_of(&exec, output),
                "salt {salt}: executor at {threads} thread(s) disagrees\n{}",
                stripped.program
            );
        }
    }
}

#[test]
fn every_injected_defect_is_reported_with_its_code() {
    let generator = ProgramGenerator::new(0xDEF0);
    let config = ProgramConfig {
        allow_negation: true,
        allow_equations: true,
        allow_arity: true,
        allow_recursion: true,
        ..ProgramConfig::default()
    };
    for salt in 0..30u64 {
        let (program, defects) = generator.random_program_with_defects(salt, &config);
        assert!(!defects.is_empty(), "salt {salt}: no defects injected");
        let output = output_relation(&program);
        let report = check_program(&program, &CheckOptions::for_outputs([output]));
        // Generated programs are safe and stratified: the injected defects
        // are warnings, never errors — zero false errors.
        assert_eq!(
            report.count(Severity::Error),
            0,
            "salt {salt}: false error\n{program}\n{:?}",
            report.diagnostics
        );
        let fired = report.codes();
        for defect in &defects {
            // The codes wgen records are plain strings (it sits below the
            // analysis crate); they must resolve to real lints...
            let lint = Lint::from_code(defect.code)
                .unwrap_or_else(|| panic!("wgen records unknown lint code {}", defect.code));
            assert!(lint.severity() >= Severity::Warning, "{}", defect.code);
            // ...and each one must actually fire on the seeded program.
            assert!(
                fired.contains(defect.code),
                "salt {salt}: {} ({}) not reported\n{program}\nreported: {fired:?}",
                defect.code,
                defect.description
            );
        }
    }
}

#[test]
fn injected_defects_do_not_change_the_output_and_strip_dead_removes_them() {
    let generator = ProgramGenerator::new(0xA11);
    let config = ProgramConfig::default();
    for salt in 0..20u64 {
        let clean = generator.random_program(salt, &config);
        let (seeded, _) = generator.random_program_with_defects(salt, &config);
        let output = output_relation(&clean);
        let outputs: BTreeSet<RelName> = [output].into_iter().collect();
        let input = edb_instance(salt ^ 0x77);
        let a = Engine::new().run(&clean, &input).unwrap();
        let b = Engine::new().run(&seeded, &input).unwrap();
        assert_eq!(
            tuples_of(&a, output),
            tuples_of(&b, output),
            "salt {salt}: injection changed the output\n{seeded}"
        );
        // Stripping removes at least the dead and unused-variable carriers.
        let stripped = strip_dead(&seeded, &outputs);
        assert!(
            stripped.removed.len() >= 2,
            "salt {salt}: expected the injected dead rules to be stripped\n{seeded}"
        );
    }
}

#[test]
fn strip_dead_cuts_instructions_on_a_dead_rule_laden_program() {
    // The §5.1.1 reachability workload buried under dead weight: ten rules
    // that derive relations nothing reads.
    let mut source = String::from("T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).\n");
    for i in 0..10 {
        source.push_str(&format!("Junk{i}(@x·@y) <- R(@x·@y), T(@x·@y).\n"));
    }
    // The conventional output must stay T: name it explicitly below.
    let program = parse_program(&source).unwrap();
    let mut input = Instance::new();
    for (x, y) in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")] {
        input
            .insert_fact(sequence_datalog::core::Fact::new(
                rel("R"),
                vec![path_of(&[x, y])],
            ))
            .unwrap();
    }
    let outputs: BTreeSet<RelName> = [rel("T")].into_iter().collect();
    let stripped = strip_dead_with_edb(&program, &outputs, Some(&nonempty_relations(&input)));
    assert_eq!(stripped.removed.len(), 10, "all junk rules removed");

    let executor = Executor::new();
    let (full, full_stats) = executor.run_with_stats(&program, &input).unwrap();
    let (pruned, pruned_stats) = executor.run_with_stats(&stripped.program, &input).unwrap();
    assert_eq!(
        render(&full, rel("T")),
        render(&pruned, rel("T")),
        "output must be byte-identical"
    );
    assert!(
        pruned_stats.instructions_executed < full_stats.instructions_executed,
        "expected fewer instructions: {} vs {}",
        pruned_stats.instructions_executed,
        full_stats.instructions_executed
    );
}
