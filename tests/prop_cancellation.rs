//! Property test for cancellation safety: cancelling an evaluation at an
//! arbitrary governor checkpoint must never corrupt anything observable.
//!
//! For random wgen programs and instances, a [`CancelToken`] armed with a
//! deterministic countdown cancels the run after `k` checkpoints.  The
//! properties:
//!
//! * the cancelled run returns `EvalError::Cancelled` (or finishes before the
//!   countdown elapses — small runs may hit no checkpoint at all);
//! * its partial statistics are monotone: every counter is bounded by the
//!   reference run's totals (evaluation does strictly less work, never more);
//! * a fresh re-run of the same program on the same input — after the
//!   cancelled attempt — produces exactly the reference instance, proving the
//!   cancelled evaluation leaked no state into later runs.

use proptest::prelude::*;
use sequence_datalog::core::CancelToken;
use sequence_datalog::engine::EvalError;
use sequence_datalog::exec::Executor;
use sequence_datalog::prelude::*;
use sequence_datalog::wgen::{ProgramConfig, ProgramGenerator, Workloads};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cancellation_at_any_checkpoint_is_clean(
        seed in 0u64..(1u64 << 32),
        salt in 0u64..(1u64 << 32),
        countdown in 1u64..48,
        parallel in any::<bool>(),
        allow_recursion in any::<bool>(),
    ) {
        let threads = if parallel { 4 } else { 1 };
        let config = ProgramConfig {
            allow_recursion,
            ..ProgramConfig::default()
        };
        let program = ProgramGenerator::new(seed).random_program(salt, &config);
        let mut input = Workloads::new(seed ^ salt).random_flat_instance(2, 3, 4, 2);
        input.declare_relation(rel("R0"), 1);
        input.declare_relation(rel("R1"), 1);

        // The uncancelled reference.
        let (reference, ref_stats) = Executor::new()
            .with_threads(threads)
            .run_with_stats(&program, &input)
            .unwrap_or_else(|e| panic!("reference failed: {e}\n{program}"));

        // Cancel after `countdown` checkpoints (deterministic test countdown;
        // no wall clock involved).
        let token = CancelToken::new();
        token.cancel_after(countdown);
        let cancelled = Executor::new()
            .with_engine(Engine::new().with_cancel_token(token))
            .with_threads(threads)
            .run_with_stats(&program, &input);
        match cancelled {
            Err(EvalError::Cancelled { reason, partial_stats }) => {
                prop_assert!(
                    reason.contains("countdown"),
                    "unexpected reason `{}`", reason
                );
                // Partial work is bounded by the reference totals.
                prop_assert!(partial_stats.iterations <= ref_stats.iterations);
                prop_assert!(partial_stats.derived_facts <= ref_stats.derived_facts);
                prop_assert!(partial_stats.rule_firings <= ref_stats.rule_firings);
            }
            Err(e) => panic!("expected Cancelled, got {e}\n{program}"),
            // The whole run fit under the countdown: nothing to check beyond
            // the re-run below.
            Ok(_) => {}
        }

        // A fresh run after the cancelled attempt matches the reference
        // exactly: cancellation left no partial state behind.
        let rerun = Executor::new()
            .with_threads(threads)
            .run(&program, &input)
            .unwrap_or_else(|e| panic!("re-run failed: {e}\n{program}"));
        prop_assert_eq!(&reference, &rerun, "{}", program);
    }
}
