//! Integration tests for the sequence relational algebra of Section 7 and the
//! equivalence with nonrecursive Sequence Datalog (Theorem 7.1).

use sequence_datalog::algebra::{algebra_to_datalog, col, datalog_to_algebra, eval, AlgebraExpr};
use sequence_datalog::prelude::*;
use sequence_datalog::syntax::PathExpr;
use sequence_datalog::wgen::Workloads;
use std::collections::BTreeSet;

fn p(spec: &str) -> Path {
    if spec.is_empty() {
        Path::empty()
    } else {
        path_of(&spec.split('·').collect::<Vec<_>>())
    }
}

fn unary_instance(rel_name: &str, paths: &[&str]) -> Instance {
    Instance::unary(
        rel(rel_name),
        paths.iter().map(|s| p(s)).collect::<Vec<_>>(),
    )
}

// ---------------------------------------------------------------------------
// Operator semantics
// ---------------------------------------------------------------------------

#[test]
fn selection_with_path_expressions() {
    // σ_{$1·a = a·$1}(R): the "only a's" query as an algebra expression.
    let input = unary_instance("R", &["a·a·a", "a", "", "a·b", "b"]);
    let a = PathExpr::constant("a");
    let expr = AlgebraExpr::select(
        AlgebraExpr::relation(rel("R"), 1),
        col(1).concat(&a),
        a.concat(&col(1)),
    );
    let out = eval(&expr, &input).unwrap();
    let paths: BTreeSet<Path> = out.into_iter().map(|t| t[0]).collect();
    assert_eq!(paths, [p("a·a·a"), p("a"), p("")].into_iter().collect());
}

#[test]
fn generalized_projection_builds_new_paths() {
    // π_{$1·$1, c}(R) duplicates each path and adds a constant column.
    let input = unary_instance("R", &["x·y", "z"]);
    let expr = AlgebraExpr::project(
        AlgebraExpr::relation(rel("R"), 1),
        vec![col(1).concat(&col(1)), PathExpr::constant("c")],
    );
    let out = eval(&expr, &input).unwrap();
    assert_eq!(out.len(), 2);
    for t in &out {
        assert_eq!(t.len(), 2);
        assert_eq!(t[1], p("c"));
        assert_eq!(t[0].len() % 2, 0);
    }
    assert!(out.iter().any(|t| t[0] == p("x·y·x·y")));
    assert!(out.iter().any(|t| t[0] == p("z·z")));
}

#[test]
fn union_difference_product_have_classical_semantics() {
    let r = unary_instance("R", &["a", "b"]);
    let mut input = r.clone();
    input.declare_relation(rel("S"), 1);
    input
        .insert_fact(Fact::new(rel("S"), vec![p("b")]))
        .unwrap();
    input
        .insert_fact(Fact::new(rel("S"), vec![p("c")]))
        .unwrap();

    let r_expr = AlgebraExpr::relation(rel("R"), 1);
    let s_expr = AlgebraExpr::relation(rel("S"), 1);

    let union = eval(&AlgebraExpr::union(r_expr.clone(), s_expr.clone()), &input).unwrap();
    assert_eq!(union.len(), 3);

    let difference = eval(
        &AlgebraExpr::difference(r_expr.clone(), s_expr.clone()),
        &input,
    )
    .unwrap();
    let diff_paths: BTreeSet<Path> = difference.into_iter().map(|t| t[0]).collect();
    assert_eq!(diff_paths, [p("a")].into_iter().collect());

    let product = eval(&AlgebraExpr::product(r_expr, s_expr), &input).unwrap();
    assert_eq!(product.len(), 4);
    assert!(product.iter().all(|t| t.len() == 2));
}

#[test]
fn unpack_extracts_packed_components() {
    // Build an instance with a packed value ⟨a·b⟩ in column 1 by evaluating a
    // projection that packs, then unpack it again.
    let input = unary_instance("R", &["a·b", "c"]);
    let pack = AlgebraExpr::project(AlgebraExpr::relation(rel("R"), 1), vec![col(1).packed()]);
    let packed = eval(&pack, &input).unwrap();
    assert!(packed.iter().all(|t| t[0].len() == 1 && !t[0].is_flat()));

    // Round-trip: UNPACK_1(π_{⟨$1⟩}(R)) = R.
    let unpack = AlgebraExpr::unpack(pack, 1);
    let out = eval(&unpack, &input).unwrap();
    let paths: BTreeSet<Path> = out.into_iter().map(|t| t[0]).collect();
    assert_eq!(paths, input.unary_paths(rel("R")));
}

#[test]
fn substrings_enumerates_all_substrings() {
    let input = unary_instance("R", &["a·b·c"]);
    let expr = AlgebraExpr::substrings(AlgebraExpr::relation(rel("R"), 1), 1);
    let out = eval(&expr, &input).unwrap();
    // Substrings of a·b·c: ε, a, b, c, a·b, b·c, a·b·c  (7 distinct).
    let subs: BTreeSet<Path> = out.iter().map(|t| t[1]).collect();
    assert_eq!(subs.len(), 7);
    for s in ["", "a", "b", "c", "a·b", "b·c", "a·b·c"] {
        assert!(subs.contains(&p(s)), "missing substring {s}");
    }
    assert!(
        !subs.contains(&p("a·c")),
        "a·c is not a contiguous substring"
    );
    // The original column is preserved.
    assert!(out.iter().all(|t| t[0] == p("a·b·c") && t.len() == 2));
}

#[test]
fn arity_mismatch_is_an_error() {
    let input = unary_instance("R", &["a"]);
    let expr = AlgebraExpr::relation(rel("R"), 2);
    assert!(eval(&expr, &input).is_err());
}

#[test]
fn column_helper_builds_distinct_column_variables() {
    assert_ne!(col(1), col(2));
    assert_eq!(col(3), col(3));
    let concat: PathExpr = col(1).concat(&col(2));
    assert_eq!(concat.terms().len(), 2);
    assert_eq!(concat.vars().len(), 2);
}

// ---------------------------------------------------------------------------
// Theorem 7.1 — both translation directions
// ---------------------------------------------------------------------------

/// Evaluate an algebra expression and a Datalog program on the same instance and
/// compare the unary output.
fn assert_algebra_matches_datalog(
    expr: &AlgebraExpr,
    program: &Program,
    output: RelName,
    input: &Instance,
) {
    let algebra_out: BTreeSet<Path> = eval(expr, input)
        .expect("algebra evaluation succeeds")
        .into_iter()
        .map(|t| {
            assert_eq!(t.len(), 1, "expected a unary result");
            t[0]
        })
        .collect();
    let datalog_out = run_unary_query(program, input, output).expect("datalog evaluation succeeds");
    assert_eq!(algebra_out, datalog_out);
}

#[test]
fn algebra_to_datalog_preserves_semantics() {
    // (σ_{$1·a=a·$1}(R) ∪ S) − T, all unary.
    let a = PathExpr::constant("a");
    let expr = AlgebraExpr::difference(
        AlgebraExpr::union(
            AlgebraExpr::select(
                AlgebraExpr::relation(rel("R"), 1),
                col(1).concat(&a),
                a.concat(&col(1)),
            ),
            AlgebraExpr::relation(rel("S"), 1),
        ),
        AlgebraExpr::relation(rel("T"), 1),
    );
    let program = algebra_to_datalog(&expr, rel("Out")).expect("translation succeeds");

    let mut input = unary_instance("R", &["a·a", "a·b", ""]);
    input.declare_relation(rel("S"), 1);
    input.declare_relation(rel("T"), 1);
    input
        .insert_fact(Fact::new(rel("S"), vec![p("q")]))
        .unwrap();
    input
        .insert_fact(Fact::new(rel("S"), vec![p("a·a")]))
        .unwrap();
    input.insert_fact(Fact::new(rel("T"), vec![p("")])).unwrap();

    assert_algebra_matches_datalog(&expr, &program, rel("Out"), &input);
    let out = run_unary_query(&program, &input, rel("Out")).unwrap();
    assert_eq!(out, [p("a·a"), p("q")].into_iter().collect());
}

#[test]
fn datalog_to_algebra_on_nonrecursive_witnesses() {
    use sequence_datalog::fragments::witnesses;
    let cases = vec![
        (witnesses::only_as_intermediate(), "only-as-intermediate"),
        (witnesses::only_black_successors(), "only-black-successors"),
    ];
    let w = Workloads::new(77);
    for (witness, label) in cases {
        let expr = datalog_to_algebra(&witness.program, witness.output)
            .unwrap_or_else(|e| panic!("{label}: translation failed: {e}"));
        let mut inputs = vec![
            unary_instance("R", &["a·a·a", "a·b", "", "b·b"]),
            w.random_strings(rel("R"), 6, 4, 1),
            w.digraph_instance(6, 10),
        ];
        for inst in &mut inputs {
            if inst.relation(rel("B")).is_none() {
                inst.declare_relation(rel("B"), 1);
                inst.insert_fact(Fact::new(rel("B"), vec![p("a")])).unwrap();
                inst.insert_fact(Fact::new(rel("B"), vec![p("b")])).unwrap();
            }
        }
        for (i, input) in inputs.iter().enumerate() {
            let algebra_out: BTreeSet<Path> = eval(&expr, input)
                .unwrap_or_else(|e| panic!("{label}: algebra eval failed on input {i}: {e}"))
                .into_iter()
                .filter(|t| t.len() == 1)
                .map(|t| t[0])
                .collect();
            let datalog_out = run_unary_query(&witness.program, input, witness.output).unwrap();
            assert_eq!(
                algebra_out, datalog_out,
                "{label}: disagreement on input {i}"
            );
        }
    }
}

#[test]
fn datalog_to_algebra_round_trip_through_datalog_again() {
    // Datalog → algebra → Datalog: all three must agree.
    let program = parse_program("T(a·$x, $x) <- R($x).\nS($x) <- T($x·a, $x).").unwrap();
    let expr = datalog_to_algebra(&program, rel("S")).expect("to algebra");
    let back = algebra_to_datalog(&expr, rel("S2")).expect("back to datalog");

    let inputs = [
        unary_instance("R", &["a·a·a·a", "a", "", "b·a", "a·b"]),
        Workloads::new(5).random_strings(rel("R"), 8, 5, 2),
    ];
    for input in &inputs {
        let direct = run_unary_query(&program, input, rel("S")).unwrap();
        let via_algebra: BTreeSet<Path> = eval(&expr, input)
            .unwrap()
            .into_iter()
            .map(|t| t[0])
            .collect();
        let via_roundtrip = run_unary_query(&back, input, rel("S2")).unwrap();
        assert_eq!(direct, via_algebra);
        assert_eq!(direct, via_roundtrip);
    }
}

#[test]
fn datalog_to_algebra_rejects_recursion() {
    use sequence_datalog::fragments::witnesses;
    let w = witnesses::squaring();
    assert!(
        datalog_to_algebra(&w.program, w.output).is_err(),
        "Theorem 7.1 covers only nonrecursive programs"
    );
}
