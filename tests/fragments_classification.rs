//! Integration tests for the fragment classification of Section 6: the Theorem 6.1
//! subsumption test, the 11 equivalence classes, and the Hasse diagram of Figure 1.

use sequence_datalog::fragments::{equivalence_classes, subsumption_conditions};
use sequence_datalog::prelude::*;

/// The 11 equivalence classes of Figure 1, written as sets of letters over {E,I,N,R}.
/// Each inner list is one class (order of members irrelevant).
fn figure1_classes() -> Vec<Vec<&'static str>> {
    vec![
        vec![""],
        vec!["N"],
        vec!["E", "I", "EI"],
        vec!["R"],
        vec!["EN"],
        vec!["NR"],
        vec!["ER"],
        vec!["IN", "EIN"],
        vec!["ENR"],
        vec!["IR", "EIR"],
        vec!["INR", "EINR"],
    ]
}

fn frag(letters: &str) -> Fragment {
    Fragment::from_features(letters.chars().map(|c| Feature::from_letter(c).unwrap()))
}

#[test]
fn there_are_exactly_sixteen_einr_fragments_and_eleven_classes() {
    let fragments = Fragment::all_over_einr();
    assert_eq!(fragments.len(), 16);
    let classes = equivalence_classes(&fragments);
    assert_eq!(classes.len(), 11, "Figure 1 shows 11 equivalence classes");
}

#[test]
fn equivalence_classes_match_figure_1_exactly() {
    let fragments = Fragment::all_over_einr();
    let classes = equivalence_classes(&fragments);
    let expected = figure1_classes();
    assert_eq!(classes.len(), expected.len());
    for members in expected {
        let class_fragments: Vec<Fragment> = members.iter().map(|m| frag(m)).collect();
        // Find the computed class containing the first member and check set equality.
        let first = class_fragments[0];
        let found = classes
            .iter()
            .find(|c| c.contains(&first))
            .unwrap_or_else(|| panic!("no class contains {first}"));
        let mut found_sorted = found.clone();
        found_sorted.sort();
        let mut expected_sorted = class_fragments.clone();
        expected_sorted.sort();
        assert_eq!(
            found_sorted, expected_sorted,
            "class of {first} does not match Figure 1"
        );
    }
}

#[test]
fn arity_and_packing_are_redundant_for_classification() {
    // Over all 64 fragments, adding A and/or P to a fragment never changes its class:
    // the number of classes stays 11.
    let all = Fragment::all();
    assert_eq!(all.len(), 64);
    let classes = equivalence_classes(&all);
    assert_eq!(classes.len(), 11, "A and P never add expressive power");
    // Moreover, every fragment is equivalent to its A/P-free "hat".
    for f in all {
        assert!(subsumed_by(f, f.hat()), "{f} not subsumed by its hat");
        assert!(subsumed_by(f.hat(), f), "hat of {f} not subsumed by {f}");
    }
}

#[test]
fn subsumption_is_a_preorder() {
    let all = Fragment::all_over_einr();
    for &a in &all {
        assert!(subsumed_by(a, a), "reflexivity fails for {a}");
        for &b in &all {
            for &c in &all {
                if subsumed_by(a, b) && subsumed_by(b, c) {
                    assert!(subsumed_by(a, c), "transitivity fails: {a} ≤ {b} ≤ {c}");
                }
            }
        }
    }
}

#[test]
fn subsumption_matches_the_ascending_paths_of_figure_1() {
    // Spot-check the subsumptions and non-subsumptions that Figure 1 shows directly.
    let le = |a: &str, b: &str| subsumed_by(frag(a), frag(b));

    // Equivalences drawn with "=" in the figure.
    assert!(le("E", "I") && le("I", "E"));
    assert!(le("EI", "I") && le("I", "EI"));
    assert!(le("IN", "EIN") && le("EIN", "IN"));
    assert!(le("IR", "EIR") && le("EIR", "IR"));
    assert!(le("INR", "EINR") && le("EINR", "INR"));

    // Ascending paths (strict subsumptions).
    assert!(le("", "N") && !le("N", ""));
    assert!(le("", "E") && !le("E", ""));
    assert!(le("", "R") && !le("R", ""));
    assert!(le("N", "EN") && !le("EN", "N"));
    assert!(le("N", "NR") && !le("NR", "N"));
    assert!(le("E", "EN") && !le("EN", "E"));
    assert!(le("E", "ER") && !le("ER", "E"));
    assert!(le("R", "NR") && !le("NR", "R"));
    assert!(le("R", "ER") && !le("ER", "R"));
    assert!(le("EN", "IN") && !le("IN", "EN"));
    assert!(le("EN", "ENR") && !le("ENR", "EN"));
    assert!(le("NR", "ENR") && !le("ENR", "NR"));
    assert!(le("ER", "ENR") && !le("ENR", "ER"));
    assert!(le("ER", "IR") && !le("IR", "ER"));
    assert!(le("IN", "INR") && !le("INR", "IN"));
    assert!(le("ENR", "INR") && !le("INR", "ENR"));
    assert!(le("IR", "INR") && !le("INR", "IR"));

    // Absence of a path means non-subsumption (incomparable pairs).
    assert!(!le("N", "E") && !le("E", "N"));
    assert!(!le("N", "R") && !le("R", "N"));
    assert!(!le("E", "R") && !le("R", "E"));
    assert!(!le("EN", "ER") && !le("ER", "EN"));
    assert!(!le("EN", "NR") && !le("NR", "EN"));
    assert!(!le("ER", "NR") && !le("NR", "ER"));
    assert!(!le("IN", "ENR") && !le("ENR", "IN"));
    assert!(!le("IN", "IR") && !le("IR", "IN"));
    assert!(!le("IR", "ENR") && !le("ENR", "IR"));

    // The "top" and "bottom" of the diagram.
    for other in ["N", "E", "R", "EN", "NR", "ER", "IN", "ENR", "IR", "INR"] {
        assert!(le("", other), "{{}} ≤ {other}");
        assert!(le(other, "INR"), "{other} ≤ {{I,N,R}}");
    }
}

#[test]
fn the_five_conditions_of_theorem_6_1_explain_every_failure() {
    // For every pair, subsumed_by must agree with the conjunction of the five
    // conditions, and a failing pair must report at least one failing condition.
    for f1 in Fragment::all() {
        for f2 in Fragment::all() {
            let report = subsumption_conditions(f1, f2);
            assert_eq!(
                report.holds(),
                subsumed_by(f1, f2),
                "report and subsumed_by disagree on {f1} ≤ {f2}"
            );
            if !report.holds() {
                assert!(
                    !report.failing_conditions().is_empty(),
                    "{f1} ≰ {f2} but no failing condition reported"
                );
                for c in report.failing_conditions() {
                    assert!((1..=5).contains(&c), "condition indices are 1..=5");
                }
            }
        }
    }
}

#[test]
fn hasse_diagram_has_figure_1_shape() {
    let diagram = HasseDiagram::build(&Fragment::all_over_einr());
    assert_eq!(diagram.classes.len(), 11);
    // Figure 1 is drawn in 5 levels: {}, then {N}/{E}/{R}, then {E,N}/{N,R}/{E,R},
    // then {I,N}/{E,N,R}/{I,R}, then {I,N,R} at the top.
    let levels = diagram.levels();
    assert_eq!(levels.len(), 5, "Figure 1 has five levels");
    let sizes: Vec<usize> = levels.iter().map(Vec::len).collect();
    assert_eq!(sizes, vec![1, 3, 3, 3, 1]);
    // The DOT rendering mentions every class label.
    let dot = diagram.to_dot();
    for i in 0..diagram.classes.len() {
        assert!(
            dot.contains(&diagram.class_label(i)),
            "DOT output misses a class"
        );
    }
    // The textual rendering is non-empty and mentions the top class.
    let text = diagram.render_text();
    assert!(text.contains("{I, N, R}") || text.contains("{I,N,R}"));
}

#[test]
fn witness_programs_live_in_their_documented_fragments() {
    use sequence_datalog::fragments::witnesses;
    let expect = |w: &witnesses::Witness, letters: &str| {
        let actual = Fragment::of_program(&w.program);
        assert_eq!(
            actual,
            frag(letters),
            "{} should be in {{{letters}}}",
            w.name
        );
    };
    expect(&witnesses::only_as_equation(), "E");
    expect(&witnesses::only_as_recursion(), "AIR");
    expect(&witnesses::only_as_intermediate(), "AI");
    expect(&witnesses::reversal_with_arity(), "AIR");
    expect(&witnesses::reversal_without_arity(), "IR");
    expect(&witnesses::squaring(), "AIR");
    expect(&witnesses::nfa_acceptance(), "AIR");
    expect(&witnesses::three_occurrences(), "EINP");
    expect(&witnesses::reachability(), "IR");
    expect(&witnesses::only_black_successors(), "IN");
    expect(&witnesses::mirrored_distinct_pairs(), "AEINR");
}

#[test]
fn feature_letters_round_trip() {
    for feature in Feature::ALL {
        assert_eq!(Feature::from_letter(feature.letter()), Some(feature));
        assert_eq!(
            Feature::from_letter(feature.letter().to_ascii_lowercase()),
            Some(feature)
        );
    }
    assert_eq!(Feature::from_letter('X'), None);
}

#[test]
fn fragment_set_operations_behave_like_sets() {
    let einr = frag("EINR");
    let ei = frag("EI");
    assert!(ei.is_subset_of(einr));
    assert!(!einr.is_subset_of(ei));
    assert_eq!(ei.union(frag("NR")), einr);
    assert_eq!(
        einr.without(Feature::Negation).without(Feature::Recursion),
        ei
    );
    assert_eq!(ei.with(Feature::Negation).with(Feature::Recursion), einr);
    assert_eq!(Fragment::empty().len(), 0);
    assert!(Fragment::empty().is_empty());
    assert_eq!(Fragment::full().len(), 6);
    assert_eq!(frag("AEINPR"), Fragment::full());
    assert_eq!(frag("AP").hat(), Fragment::empty());
}
