//! Property-based tests for associative unification: soundness of symbolic
//! solutions and completeness against a brute-force ground search on small
//! alphabets.

use proptest::prelude::*;
use sequence_datalog::prelude::*;
use sequence_datalog::syntax::{Equation, PathExpr, Term, Valuation, Var};
use sequence_datalog::unify::{is_one_sided_nonlinear, solve_allowing_empty, SolveOptions};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

const ATOMS: [&str; 2] = ["a", "b"];

fn atom_term() -> impl Strategy<Value = Term> {
    prop_oneof![Just(Term::constant("a")), Just(Term::constant("b"))]
}

/// A ground side: a concatenation of constants.
fn ground_expr(max_len: usize) -> impl Strategy<Value = PathExpr> {
    prop::collection::vec(atom_term(), 0..=max_len).prop_map(PathExpr::from_terms)
}

/// A pattern side: constants plus *distinct* path/atomic variables (linear), so the
/// equation `pattern = ground` is one-sided nonlinear and pig-pug terminates.
fn linear_pattern(max_len: usize) -> impl Strategy<Value = PathExpr> {
    prop::collection::vec(0u8..=3, 0..=max_len).prop_map(|kinds| {
        let mut terms = Vec::new();
        let mut next_var = 0usize;
        for k in kinds {
            match k {
                0 => terms.push(Term::constant("a")),
                1 => terms.push(Term::constant("b")),
                2 => {
                    terms.push(Term::Var(Var::path(&format!("p{next_var}"))));
                    next_var += 1;
                }
                _ => {
                    terms.push(Term::Var(Var::atom(&format!("q{next_var}"))));
                    next_var += 1;
                }
            }
        }
        PathExpr::from_terms(terms)
    })
}

/// Every ground valuation over `vars` mapping path variables to words over {a, b} of
/// length at most `max_len` and atomic variables to a or b.
fn enumerate_valuations(vars: &[Var], max_len: usize) -> Vec<Valuation> {
    let mut out = vec![Valuation::new()];
    for &v in vars {
        let mut next = Vec::new();
        for valuation in &out {
            if v.is_atom_var() {
                for name in ATOMS {
                    let mut extended = valuation.clone();
                    extended.bind_atom(v, atom(name));
                    next.push(extended);
                }
            } else {
                for word in words_up_to(max_len) {
                    let mut extended = valuation.clone();
                    extended.bind_path(v, word);
                    next.push(extended);
                }
            }
        }
        out = next;
    }
    out
}

/// All words over {a, b} of length 0..=n.
fn words_up_to(n: usize) -> Vec<Path> {
    let mut out = vec![Path::empty()];
    let mut frontier = vec![Path::empty()];
    for _ in 0..n {
        let mut next = Vec::new();
        for w in &frontier {
            for name in ATOMS {
                let mut e = *w;
                e.push(Value::Atom(atom(name)));
                out.push(e);
                next.push(e);
            }
        }
        frontier = next;
    }
    out
}

fn is_ground_solution(eq: &Equation, valuation: &Valuation) -> bool {
    match (valuation.apply(&eq.lhs), valuation.apply(&eq.rhs)) {
        (Some(l), Some(r)) => l == r,
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Soundness (cheap, many cases)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness: every symbolic solution, applied to both sides, yields the same
    /// path expression.
    #[test]
    fn symbolic_solutions_are_sound(pattern in linear_pattern(5), ground in ground_expr(5)) {
        let equation = Equation::new(pattern, ground);
        prop_assume!(is_one_sided_nonlinear(&equation));
        let solutions = solve_allowing_empty(&equation, &SolveOptions::default()).unwrap();
        for s in &solutions {
            prop_assert!(s.solves(&equation), "{} does not solve {}", s, equation);
        }
    }

    /// Ground equations (no variables at all) are decided by syntactic equality.
    #[test]
    fn ground_equations_are_syntactic_equality(l in ground_expr(5), r in ground_expr(5)) {
        let equation = Equation::new(l.clone(), r.clone());
        let solutions = solve_allowing_empty(&equation, &SolveOptions::default()).unwrap();
        prop_assert_eq!(!solutions.is_empty(), l == r);
    }

    /// A linear pattern always unifies with any of its own ground instances.
    #[test]
    fn linear_patterns_unify_with_their_ground_instances(pattern in linear_pattern(4)) {
        let vars = pattern.vars();
        let mut valuation = Valuation::new();
        for (i, v) in vars.iter().enumerate() {
            if v.is_atom_var() {
                valuation.bind_atom(*v, atom(ATOMS[i % 2]));
            } else {
                valuation.bind_path(*v, repeat_path(ATOMS[i % 2], i % 3));
            }
        }
        let ground = valuation.apply(&pattern).unwrap();
        let equation = Equation::new(pattern, PathExpr::from_path(&ground));
        prop_assume!(is_one_sided_nonlinear(&equation));
        let solutions = solve_allowing_empty(&equation, &SolveOptions::default()).unwrap();
        prop_assert!(!solutions.is_empty(), "{} must be satisfiable", equation);
        for s in &solutions {
            prop_assert!(s.solves(&equation));
        }
    }
}

// ---------------------------------------------------------------------------
// Completeness against brute force (more expensive, fewer cases)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Decision correctness: the equation has a symbolic solution iff it has a ground
    /// solution (brute-forced over small valuations — the ground side bounds path
    /// variable lengths, so length <= 3 suffices).
    #[test]
    fn satisfiability_agrees_with_brute_force(pattern in linear_pattern(3), ground in ground_expr(3)) {
        let equation = Equation::new(pattern, ground);
        prop_assume!(is_one_sided_nonlinear(&equation));
        let solutions = solve_allowing_empty(&equation, &SolveOptions::default()).unwrap();

        let vars: Vec<Var> = equation.vars();
        let brute = enumerate_valuations(&vars, 3)
            .into_iter()
            .any(|v| is_ground_solution(&equation, &v));
        prop_assert_eq!(
            !solutions.is_empty(),
            brute,
            "symbolic and brute-force satisfiability disagree for {}",
            equation
        );
    }

    /// Completeness on ground instantiations: every ground solution is an instance of
    /// some symbolic solution.
    #[test]
    fn every_ground_solution_is_covered(pattern in linear_pattern(2), ground in ground_expr(3)) {
        let equation = Equation::new(pattern, ground);
        prop_assume!(is_one_sided_nonlinear(&equation));
        let solutions = solve_allowing_empty(&equation, &SolveOptions::default()).unwrap();
        let vars: Vec<Var> = equation.vars();

        'outer: for valuation in enumerate_valuations(&vars, 3) {
            if !is_ground_solution(&equation, &valuation) {
                continue;
            }
            // Some symbolic solution must specialize to this valuation.
            for s in &solutions {
                let residual_vars: Vec<Var> = vars
                    .iter()
                    .flat_map(|v| s.get(*v).map(|e| e.vars()).unwrap_or_else(|| vec![*v]))
                    .collect();
                for residual in enumerate_valuations(&residual_vars, 3) {
                    let matches_all = vars.iter().all(|v| {
                        let expr = s.get(*v).cloned().unwrap_or_else(|| PathExpr::var(*v));
                        match residual.apply(&expr) {
                            Some(p) => Some(p) == valuation.apply(&PathExpr::var(*v)),
                            None => false,
                        }
                    });
                    if matches_all {
                        continue 'outer;
                    }
                }
            }
            prop_assert!(
                false,
                "ground solution {} of {} is not covered by any of the {} symbolic solutions",
                valuation,
                equation,
                solutions.len()
            );
        }
    }
}
