//! Workspace-wiring smoke test: prove the facade's public API is usable
//! end-to-end by driving the `quickstart` example through Cargo itself, the
//! way a user would (`cargo run --example quickstart`).
//!
//! The other eight examples are compiled (but not run) by `cargo test`
//! already, since Cargo builds every example target alongside the tests; this
//! test additionally checks that compiling all of them succeeds explicitly and
//! that the quickstart executes and prints its expected conclusion.

use std::process::Command;

/// The `cargo` that is running this test, so the inner invocations use the
/// same toolchain and target directory (everything is already built).
fn cargo() -> Command {
    Command::new(env!("CARGO"))
}

#[test]
fn all_examples_compile() {
    let output = cargo()
        .args(["build", "--examples"])
        .output()
        .expect("failed to spawn cargo build --examples");
    assert!(
        output.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn quickstart_example_runs_and_answers() {
    let output = cargo()
        .args(["run", "--example", "quickstart"])
        .output()
        .expect("failed to spawn cargo run --example quickstart");
    assert!(
        output.status.success(),
        "quickstart example exited nonzero:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    // The example evaluates Example 3.1 (paths consisting only of a's) and
    // prints the output relation; `a·a·a·a·a` must be selected, `a·b·a` not.
    assert!(
        stdout.contains("output relation S"),
        "unexpected quickstart output:\n{stdout}"
    );
    assert!(
        stdout.contains("a\u{b7}a\u{b7}a\u{b7}a\u{b7}a"),
        "quickstart did not report the all-a path:\n{stdout}"
    );
}
