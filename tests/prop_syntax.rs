//! Property-based tests for the syntax layer: parser/pretty-printer round-trips,
//! feature detection, limited variables, and valuations.

use proptest::prelude::*;
use sequence_datalog::prelude::*;
use sequence_datalog::syntax::PathExpr;
use sequence_datalog::syntax::{
    analysis::{is_safe, limited_vars},
    Literal, Predicate, Rule, Term, Valuation, Var,
};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn atom_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("a"), Just("b"), Just("c")]
}

fn var_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("x"), Just("y"), Just("z"), Just("u")]
}

/// A single term: a constant, an atomic variable, a path variable, or a packed
/// flat expression.
fn term(allow_packing: bool) -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        atom_name().prop_map(Term::constant),
        var_name().prop_map(|n| Term::Var(Var::atom(n))),
        var_name().prop_map(|n| Term::Var(Var::path(n))),
    ];
    if allow_packing {
        prop_oneof![
            leaf.clone(),
            prop::collection::vec(leaf, 0..3)
                .prop_map(|ts| PathExpr::from_terms(ts).packed().terms()[0].clone()),
        ]
        .boxed()
    } else {
        leaf.boxed()
    }
}

/// A path expression of up to 5 terms.
fn path_expr(allow_packing: bool) -> impl Strategy<Value = PathExpr> {
    prop::collection::vec(term(allow_packing), 0..=5).prop_map(PathExpr::from_terms)
}

/// A flat ground path (for valuations).
fn flat_path() -> impl Strategy<Value = Path> {
    prop::collection::vec(atom_name(), 0..=6).prop_map(|names| path_of(&names))
}

// ---------------------------------------------------------------------------
// Parser / pretty-printer round trips
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn path_expressions_round_trip_through_the_parser(expr in path_expr(true)) {
        let rendered = expr.to_string();
        let reparsed = parse_expr(&rendered)
            .unwrap_or_else(|e| panic!("rendered expression `{rendered}` does not parse: {e}"));
        prop_assert_eq!(reparsed, expr);
    }

    #[test]
    fn rules_round_trip_through_the_parser(
        head_expr in path_expr(true),
        body_exprs in prop::collection::vec(path_expr(true), 1..=3),
    ) {
        // Build S(head_expr) <- R(b1), ..., R(bk).  This is not necessarily safe,
        // but parsing and printing do not require safety.
        let head = Predicate::new(rel("S"), vec![head_expr]);
        let body: Vec<Literal> = body_exprs
            .into_iter()
            .map(|e| Literal::pred(Predicate::new(rel("R"), vec![e])))
            .collect();
        let rule = Rule::new(head, body);
        let rendered = rule.to_string();
        let reparsed = sequence_datalog::syntax::parse_rule(&rendered)
            .unwrap_or_else(|e| panic!("rendered rule `{rendered}` does not parse: {e}"));
        prop_assert_eq!(reparsed, rule);
    }

    #[test]
    fn programs_round_trip_through_the_parser(
        exprs in prop::collection::vec(path_expr(false), 1..=4),
        negate in prop::collection::vec(any::<bool>(), 1..=4),
    ) {
        // One stratum per rule: Si($x) <- R($x), [!]Q(expr_i), so that negation and
        // multiple strata are exercised.  Variables in expr_i might be unlimited, so
        // force safety by reusing $x only.
        let mut source = String::new();
        for (i, (expr, neg)) in exprs.iter().zip(negate.iter()).enumerate() {
            let ground: PathExpr = expr
                .terms()
                .iter()
                .filter(|t| !t.is_var())
                .cloned()
                .collect();
            let literal = if *neg { format!("!Q({ground})") } else { format!("Q({ground})") };
            source.push_str(&format!("S{i}($x) <- R($x), {literal}.\n"));
            if i + 1 < exprs.len() {
                source.push_str("---\n");
            }
        }
        let program = parse_program(&source)
            .unwrap_or_else(|e| panic!("generated program does not parse: {e}\n{source}"));
        let rendered = program.to_string();
        let reparsed = parse_program(&rendered)
            .unwrap_or_else(|e| panic!("pretty-printed program does not parse: {e}\n{rendered}"));
        prop_assert_eq!(reparsed, program);
    }
}

// ---------------------------------------------------------------------------
// Path expressions: structure and substitution
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn concatenation_of_expressions_flattens(a in path_expr(true), b in path_expr(true)) {
        let c = a.concat(&b);
        prop_assert_eq!(c.terms().len(), a.terms().len() + b.terms().len());
        prop_assert_eq!(c.vars().len() <= a.vars().len() + b.vars().len(), true);
    }

    #[test]
    fn ground_expressions_become_paths(p in flat_path()) {
        let expr = PathExpr::from_path(&p);
        prop_assert!(expr.is_ground());
        prop_assert_eq!(expr.as_path(), Some(p));
        prop_assert_eq!(expr.vars().len(), 0);
    }

    #[test]
    fn substituting_all_variables_grounds_the_expression(expr in path_expr(false), p in flat_path()) {
        let map: std::collections::BTreeMap<Var, PathExpr> = expr
            .vars()
            .into_iter()
            .map(|v| {
                let replacement = if v.is_atom_var() {
                    PathExpr::constant("a")
                } else {
                    PathExpr::from_path(&p)
                };
                (v, replacement)
            })
            .collect();
        let grounded = expr.substitute(&map);
        prop_assert!(grounded.is_ground());
    }

    #[test]
    fn var_occurrences_counts_multiplicity(expr in path_expr(true)) {
        let occurrences = expr.var_occurrences();
        let distinct = expr.vars();
        prop_assert!(occurrences.len() >= distinct.len());
        for v in &distinct {
            prop_assert!(occurrences.contains(v));
        }
    }

    #[test]
    fn valuations_evaluate_ground_expressions_to_themselves(p in flat_path()) {
        let expr = PathExpr::from_path(&p);
        let valuation = Valuation::new();
        prop_assert_eq!(valuation.apply(&expr), Some(p));
    }

    #[test]
    fn valuations_respect_variable_kinds(p in flat_path()) {
        let x = Var::path("x");
        let a = Var::atom("a");
        let mut valuation = Valuation::new();
        valuation.bind_path(x, p);
        valuation.bind_atom(a, atom("q"));
        // $x · @a evaluates to p · q.
        let expr = PathExpr::var(x).concat(&PathExpr::var(a));
        let result = valuation.apply(&expr).unwrap();
        prop_assert_eq!(result.len(), p.len() + 1);
        // An unbound variable leaves the expression unevaluable.
        let dangling = expr.concat(&PathExpr::var(Var::path("unbound")));
        prop_assert_eq!(valuation.apply(&dangling), None);
    }
}

// ---------------------------------------------------------------------------
// Feature detection, safety, limited variables
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn adding_rules_never_removes_features(
        exprs in prop::collection::vec(path_expr(false), 1..=3),
    ) {
        // Build an increasing sequence of programs; the detected feature set must be
        // monotone under adding rules to the single stratum.
        let mut rules: Vec<String> = Vec::new();
        let mut previous = Fragment::empty();
        for (i, expr) in exprs.iter().enumerate() {
            let vars = expr.vars();
            let positive = if vars.is_empty() {
                "R($x)".to_string()
            } else {
                // Bind every variable of the expression through a positive predicate.
                let args: Vec<String> = vars.iter().map(|v| v.to_string()).collect();
                format!("R({})", args.join("·"))
            };
            rules.push(format!("S{i}({expr}) <- {positive}."));
            let program = parse_program(&rules.join("\n")).unwrap();
            let fragment = Fragment::of_program(&program);
            prop_assert!(
                previous.is_subset_of(fragment),
                "feature set shrank from {previous} to {fragment}"
            );
            previous = fragment;
        }
    }

    #[test]
    fn safety_is_equivalent_to_all_vars_limited(expr in path_expr(false)) {
        // S(expr) <- R($x).  The rule is safe iff every variable of expr is $x.
        let head = Predicate::new(rel("S"), vec![expr.clone()]);
        let body = vec![Literal::pred(Predicate::new(
            rel("R"),
            vec![PathExpr::var(Var::path("x"))],
        ))];
        let rule = Rule::new(head, body);
        let limited = limited_vars(&rule);
        prop_assert!(limited.contains(&Var::path("x")));
        let expected_safe = expr.vars().iter().all(|v| *v == Var::path("x"));
        prop_assert_eq!(is_safe(&rule), expected_safe);
    }

    #[test]
    fn equations_propagate_limitedness(expr in path_expr(false)) {
        // S($y) <- R($x), $y·expr_without_y = $x.   $y is limited because the other
        // side ($x) is limited.
        let x = Var::path("x");
        let y = Var::path("y");
        let lhs = PathExpr::var(y).concat(&expr.substitute(
            &expr.vars().into_iter().map(|v| (v, PathExpr::constant("a"))).collect(),
        ));
        let rule = Rule::new(
            Predicate::new(rel("S"), vec![PathExpr::var(y)]),
            vec![
                Literal::pred(Predicate::new(rel("R"), vec![PathExpr::var(x)])),
                Literal::eq(lhs, PathExpr::var(x)),
            ],
        );
        let limited = limited_vars(&rule);
        prop_assert!(limited.contains(&y), "equation did not limit $y");
        prop_assert!(is_safe(&rule));
    }

    #[test]
    fn feature_detection_matches_program_shape(use_eq in any::<bool>(), use_neg in any::<bool>(), use_rec in any::<bool>()) {
        let mut body = vec!["R($x)".to_string()];
        if use_eq {
            body.push("$x·a = a·$x".to_string());
        }
        if use_neg {
            body.push("!Q($x)".to_string());
        }
        let mut src = format!("S($x) <- {}.", body.join(", "));
        if use_rec {
            src.push_str("\nS($x·a) <- S($x).");
        }
        let program = parse_program(&src).unwrap();
        let features = FeatureSet::of_program(&program);
        prop_assert_eq!(features.equations, use_eq);
        prop_assert_eq!(features.negation, use_neg);
        prop_assert_eq!(features.recursion, use_rec);
        prop_assert!(!features.arity);
        prop_assert!(!features.packing);
        prop_assert!(!features.intermediate);
    }
}
