//! Property tests for the hash-consed path representation and the indexed
//! evaluation pipeline built on it.
//!
//! Three layers are pinned down:
//!
//! 1. **Store invariants** — id equality ⇔ path equality, concatenation
//!    associativity through the composition memo, subpath identity through
//!    the cut memo, and `Display` round-trips through the parser.
//! 2. **Index agreement** — prefix-trie and joint-index probes return
//!    exactly the tuples a linear scan finds (modulo the documented
//!    superset-then-filter contract, which the test closes by filtering).
//! 3. **Pipeline differential** — the interned pipeline computes the same
//!    models as the PR-4 semantics on random wgen programs, through the
//!    sequential `Engine` *and* the `Executor` at 1 and 4 threads, naive and
//!    semi-naive.  (The reference implementation here is the naive fixpoint
//!    of the same front end, which the earlier PRs' differential tests tied
//!    to the seed semantics.)

use proptest::prelude::*;
use seqdl_core::{rel, Fact, Instance, Path, PathId, Value, TRIE_DEPTH};
use seqdl_engine::{Engine, EvalLimits, FixpointStrategy};
use seqdl_exec::Executor;
use seqdl_wgen::{ProgramConfig, ProgramGenerator, Workloads};

fn atom_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")]
}

fn flat_path() -> impl Strategy<Value = Path> {
    prop::collection::vec(atom_name(), 0..=8).prop_map(|names| seqdl_core::path_of(&names))
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        atom_name().prop_map(Value::atom),
        flat_path().prop_map(Value::packed),
    ]
}

fn deep_path() -> impl Strategy<Value = Path> {
    prop::collection::vec(value(), 0..=6).prop_map(Path::from_values)
}

proptest! {
    /// Hash-consing: equal content ⇔ equal id, across every construction
    /// route (value iterators, concatenation, subpaths, slices).
    #[test]
    fn id_equality_is_path_equality(a in deep_path(), b in deep_path()) {
        prop_assert_eq!(a == b, a.id() == b.id());
        prop_assert_eq!(a.values() == b.values(), a.id() == b.id());
        // Rebuilding from the shared values yields the same id.
        let rebuilt = Path::from_values(a.values().iter().copied());
        prop_assert_eq!(rebuilt.id(), a.id());
        let sliced = Path::from_slice(a.values());
        prop_assert_eq!(sliced.id(), a.id());
    }

    /// Concatenation through the composition memo stays associative and
    /// produces the same ids as element-wise construction.
    #[test]
    fn concat_is_associative_and_consed(a in deep_path(), b in deep_path(), c in deep_path()) {
        let left = a.concat(&b).concat(&c);
        let right = a.concat(&b.concat(&c));
        prop_assert_eq!(left.id(), right.id());
        let elementwise = Path::from_values(
            a.values().iter().chain(b.values()).chain(c.values()).copied(),
        );
        prop_assert_eq!(left.id(), elementwise.id());
        prop_assert_eq!(a.concat(&Path::empty()).id(), a.id());
        prop_assert_eq!(Path::empty().id(), PathId::EMPTY);
    }

    /// Subpaths resolved through the cut memo equal fresh interning of the
    /// same content, and the subpath iterator agrees with direct cuts.
    #[test]
    fn subpaths_are_consed_cuts(a in deep_path(), start in 0usize..=6, end in 0usize..=6) {
        let (start, end) = (start.min(a.len()), end.min(a.len()));
        let (start, end) = (start.min(end), start.max(end));
        let cut = a.subpath(start, end);
        prop_assert_eq!(cut.id(), Path::from_slice(&a.values()[start..end]).id());
        prop_assert_eq!(a.subpath(0, a.len()).id(), a.id());
        let via_iter: Vec<Path> = a.subpaths().collect();
        prop_assert_eq!(via_iter.len(), a.len() * (a.len() + 1) / 2 + 1);
        prop_assert!(via_iter.contains(&cut) || start == end);
    }

    /// Display round-trips through the instance-text parser, preserving the
    /// interned identity.
    #[test]
    fn display_round_trips_to_the_same_id(a in deep_path()) {
        let text = format!("R({a}).");
        let parsed = seqdl_io::parse_instance(&text).unwrap();
        let back: Vec<Path> = parsed.unary_paths_iter(rel("R")).collect();
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(back[0].id(), a.id());
    }
}

/// Brute-force reference for prefix probes: scan all tuples of a unary
/// relation and keep those whose path starts with `prefix`.
fn scan_prefix(instance: &Instance, name: &str, prefix: &[Value]) -> Vec<Path> {
    instance
        .unary_paths_iter(rel(name))
        .filter(|p| p.len() >= prefix.len() && &p.values()[..prefix.len()] == prefix)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Trie probes agree with a linear scan at every prefix length, before
    /// and after planner-style deepening.
    #[test]
    fn trie_probe_agrees_with_linear_scan(
        paths in prop::collection::vec(flat_path(), 1..40),
        probe in prop::collection::vec(atom_name(), 1..=4),
        deepen in any::<bool>(),
    ) {
        let mut instance = Instance::unary(rel("R"), paths);
        if deepen {
            instance.ensure_column_depth(rel("R"), 0, TRIE_DEPTH);
        }
        let prefix: Vec<Value> = probe.iter().map(|n| Value::atom(n)).collect();
        let relation = instance.relation(rel("R")).unwrap();
        // The probe may return a superset (depth-capped walks); close the
        // contract the way the evaluator does, by filtering with the full
        // predicate match — here a direct prefix check.
        let probed: Vec<Path> = relation
            .probe_prefix(0, &prefix)
            .iter()
            .map(|e| relation.as_slice()[e.id as usize][0])
            .filter(|p| p.len() >= prefix.len() && p.values()[..prefix.len()] == prefix[..])
            .collect();
        let scanned = scan_prefix(&instance, "R", &prefix);
        prop_assert_eq!(probed, scanned);
    }

    /// Joint-index probes agree with a scan over both columns' first values.
    #[test]
    fn joint_probe_agrees_with_linear_scan(
        xs in prop::collection::vec(atom_name(), 1..40),
        ys in prop::collection::vec(atom_name(), 1..40),
        q in atom_name(),
        a in atom_name(),
    ) {
        let mut instance = Instance::new();
        for (x, y) in xs.iter().zip(&ys) {
            instance
                .insert_fact(Fact::new(
                    rel("D"),
                    vec![seqdl_core::path_of(&[x]), seqdl_core::path_of(&[y])],
                ))
                .unwrap();
        }
        instance.ensure_joint_index(rel("D"), &[0, 1]);
        let relation = instance.relation(rel("D")).unwrap();
        let firsts = [Value::atom(q), Value::atom(a)];
        let probed: Vec<&[Path]> = relation
            .probe_joint(&[0, 1], &firsts)
            .expect("index registered")
            .iter()
            .map(|&id| relation.as_slice()[id as usize].as_slice())
            .filter(|t| t[0].values().first() == Some(&firsts[0])
                && t[1].values().first() == Some(&firsts[1]))
            .collect();
        let scanned: Vec<&[Path]> = relation
            .as_slice()
            .iter()
            .map(Vec::as_slice)
            .filter(|t| t[0].values().first() == Some(&firsts[0])
                && t[1].values().first() == Some(&firsts[1]))
            .collect();
        prop_assert_eq!(probed, scanned);
    }
}

fn eval_limits() -> EvalLimits {
    EvalLimits {
        max_iterations: 400,
        max_facts: 60_000,
        max_path_len: 2_000,
        ..EvalLimits::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The whole interned pipeline — tries, joint indexes, bucket-side
    /// matching, emit memo — is output-identical to the naive reference
    /// fixpoint on random programs, for the Engine and for the Executor at 1
    /// and 4 threads.
    #[test]
    fn interned_pipeline_is_output_identical(
        seed in 0u64..(1u64 << 32),
        salt in 0u64..(1u64 << 32),
        recursion in any::<bool>(),
        allow_negation in any::<bool>(),
    ) {
        let config = ProgramConfig {
            allow_recursion: recursion,
            allow_negation,
            ..ProgramConfig::default()
        };
        let program = ProgramGenerator::new(seed).random_program(salt, &config);
        let mut input = Workloads::new(seed ^ salt).random_flat_instance(2, 4, 5, 2);
        input.declare_relation(rel("R0"), 1);
        input.declare_relation(rel("R1"), 1);

        let naive = Engine::new()
            .with_limits(eval_limits())
            .with_strategy(FixpointStrategy::Naive)
            .run(&program, &input);
        let semi = Engine::new()
            .with_limits(eval_limits())
            .with_strategy(FixpointStrategy::SemiNaive)
            .run(&program, &input);
        // Limit blowups must at least be consistent between strategies:
        // the model either exists within limits for both or for neither
        // (iteration accounting differs, so only fact/path limits are
        // comparable; skip the case).
        if let (Ok(reference), Ok(semi)) = (naive, semi) {
            prop_assert_eq!(&reference, &semi, "semi-naive diverged from naive");
            for threads in [1usize, 4] {
                let parallel = Executor::new()
                    .with_engine(Engine::new().with_limits(eval_limits()))
                    .with_threads(threads)
                    .run(&program, &input)
                    .expect("executor agrees on termination");
                prop_assert_eq!(&reference, &parallel, "executor at {} threads diverged", threads);
            }
        }
    }
}
