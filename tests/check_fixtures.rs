//! One positive/negative fixture pair per lint code: the positive program
//! must fire the code, the negative (a minimal fix of the same shape) must
//! not.  This pins the codes themselves — renaming or retiring a lint breaks
//! this table on purpose.

use sequence_datalog::analysis::{check_program, CheckOptions, Lint};
use sequence_datalog::prelude::*;

struct Fixture {
    code: &'static str,
    /// Must fire `code`.
    positive: &'static str,
    /// Must NOT fire `code`.
    negative: &'static str,
    /// Output relation the check is run against.
    output: &'static str,
    /// EDB relations assumed nonempty (None = no instance knowledge).
    nonempty_edb: Option<&'static [&'static str]>,
}

const FIXTURES: &[Fixture] = &[
    Fixture {
        code: "SD-E001", // unsafe-rule: $y unlimited, neither head-only nor negated
        positive: "S($x) <- R($x), $y = $y.",
        negative: "S($x) <- R($x), $y = $x.",
        output: "S",
        nonempty_edb: None,
    },
    Fixture {
        code: "SD-E002", // inconsistent-arity: R read as both /1 and /2
        positive: "S($x) <- R($x).\nS($x) <- R($x, $y).",
        negative: "S($x) <- R($x).\nS($x) <- R2($x, $y).",
        output: "S",
        nonempty_edb: None,
    },
    Fixture {
        code: "SD-E003", // not-stratified: S negates T, T reads S, same stratum
        positive: "S($x) <- R($x), !T($x).\nT($x) <- S($x).",
        negative: "T($x) <- R($x).\n---\nS($x) <- R($x), !T($x).",
        output: "S",
        nonempty_edb: None,
    },
    Fixture {
        code: "SD-E004", // head-only-variable
        positive: "S($x, $y) <- R($x).",
        negative: "S($x, $x) <- R($x).",
        output: "S",
        nonempty_edb: None,
    },
    Fixture {
        code: "SD-E005", // negation-shadowed-variable: $y only under negation
        positive: "S($x) <- R($x), !T($y).",
        negative: "S($x) <- R($x), T($y), !B($y).",
        output: "S",
        nonempty_edb: None,
    },
    Fixture {
        code: "SD-W101", // dead-rule: U cannot reach the output S
        positive: "U($x) <- R($x).\nS($x) <- R($x).",
        negative: "U($x) <- R($x).\nS($x) <- U($x).",
        output: "S",
        nonempty_edb: None,
    },
    Fixture {
        code: "SD-W102", // dead-relation
        positive: "U($x) <- R($x).\nS($x) <- R($x).",
        negative: "U($x) <- R($x).\nS($x) <- U($x).",
        output: "S",
        nonempty_edb: None,
    },
    Fixture {
        code: "SD-W103", // empty-relation: Z holds no facts and has no rules
        positive: "S($x) <- R($x), Z($x).",
        negative: "S($x) <- R($x), Z($x).\nZ(a).",
        output: "S",
        nonempty_edb: Some(&["R"]),
    },
    Fixture {
        code: "SD-W104", // always-false-rule: ground equation a = b
        positive: "S($x) <- R($x), a = b.\nS($x) <- R($x).",
        negative: "S($x) <- R($x), a = a.\nS($x) <- R($x).",
        output: "S",
        nonempty_edb: None,
    },
    Fixture {
        code: "SD-W105", // duplicate-rule (up to variable renaming)
        positive: "S($x) <- R($x).\nS($y) <- R($y).",
        negative: "S($x) <- R($x).\nS($y) <- B($y).",
        output: "S",
        nonempty_edb: None,
    },
    Fixture {
        code: "SD-W106", // subsumed-rule: the longer body adds nothing
        positive: "S($x) <- R($x).\nS($x) <- R($x), B($x).",
        negative: "S($x) <- R($x).\nS($x) <- B($x).",
        output: "S",
        nonempty_edb: None,
    },
    Fixture {
        code: "SD-W201", // unused-variable: $y bound once, never used
        positive: "S($x) <- R($x), B($y).",
        negative: "S($x) <- R($x), B($y), B($y·a).",
        output: "S",
        nonempty_edb: None,
    },
    Fixture {
        code: "SD-W301", // divergence-risk: the head grows without bound
        positive: "T($x) <- R($x).\nT(a·$x) <- T($x).",
        negative: "T($x) <- R($x).\nT($x) <- T(a·$x).",
        output: "T",
        nonempty_edb: None,
    },
];

fn options_for(fixture: &Fixture) -> CheckOptions {
    let mut options = CheckOptions::for_outputs([rel(fixture.output)]);
    options.nonempty_edb = fixture
        .nonempty_edb
        .map(|names| names.iter().map(|n| rel(n)).collect());
    options
}

#[test]
fn every_lint_code_has_a_firing_and_a_clean_fixture() {
    for fixture in FIXTURES {
        let lint = Lint::from_code(fixture.code)
            .unwrap_or_else(|| panic!("fixture names unknown code {}", fixture.code));
        assert_eq!(lint.code(), fixture.code);

        let positive = parse_program(fixture.positive)
            .unwrap_or_else(|e| panic!("{}: positive fixture does not parse: {e}", fixture.code));
        let report = check_program(&positive, &options_for(fixture));
        assert!(
            report.codes().contains(fixture.code),
            "{}: expected to fire on\n{}\nreported: {:?}",
            fixture.code,
            fixture.positive,
            report.codes()
        );

        let negative = parse_program(fixture.negative)
            .unwrap_or_else(|e| panic!("{}: negative fixture does not parse: {e}", fixture.code));
        let report = check_program(&negative, &options_for(fixture));
        assert!(
            !report.codes().contains(fixture.code),
            "{}: must not fire on\n{}\nreported: {:?}",
            fixture.code,
            fixture.negative,
            report.codes()
        );
    }
}

#[test]
fn the_fixture_table_covers_every_warning_and_error_lint() {
    // SD-I401 (the fragment note) fires on every program, so it has no
    // negative fixture; everything else must appear in the table.
    let covered: Vec<&str> = FIXTURES.iter().map(|f| f.code).collect();
    for lint in Lint::ALL {
        if lint == Lint::FragmentNote {
            continue;
        }
        assert!(
            covered.contains(&lint.code()),
            "lint {} ({}) has no fixture pair",
            lint.code(),
            lint.name()
        );
    }
}

#[test]
fn the_fragment_note_fires_on_every_program() {
    for source in ["S($x) <- R($x).", "S <- !B.", "T(a)."] {
        let program = parse_program(source).unwrap();
        let report = check_program(&program, &CheckOptions::default());
        assert!(report.codes().contains("SD-I401"), "{source}");
    }
}
