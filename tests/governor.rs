//! Acceptance tests for the resource governor: wall-clock deadlines,
//! deterministic countdown cancellation through the parallel executor, and
//! the path-store byte budget.

use std::time::{Duration, Instant};

use sequence_datalog::core::CancelToken;
use sequence_datalog::engine::{EvalError, EvalLimits, LimitKind};
use sequence_datalog::exec::Executor;
use sequence_datalog::prelude::*;
use sequence_datalog::wgen::Workloads;

/// A program that grows a path forever; only the governor can stop it once
/// the classic limits are pushed out of the way.
fn diverging_program() -> Program {
    parse_program("T(a).\nT(a·$x) <- T($x).").unwrap()
}

fn unlimited() -> EvalLimits {
    EvalLimits {
        max_iterations: 100_000_000,
        max_facts: 100_000_000,
        max_path_len: 100_000_000,
        ..EvalLimits::default()
    }
}

#[test]
fn deadline_cancels_a_diverging_run_promptly() {
    let deadline = Duration::from_millis(50);
    let engine = Engine::new().with_limits(EvalLimits {
        deadline: Some(deadline),
        ..unlimited()
    });
    let started = Instant::now();
    let result = engine.run_with_stats(&diverging_program(), &Instance::new());
    let elapsed = started.elapsed();

    match result {
        Err(EvalError::Cancelled {
            reason,
            partial_stats,
        }) => {
            assert!(reason.contains("deadline"), "reason: {reason}");
            assert!(
                partial_stats.iterations > 0,
                "partial stats should record the work done before the \
                 deadline: {partial_stats:?}"
            );
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // The governor checks at every fixpoint round and every few thousand
    // interpreter instructions, so overshoot past the deadline is bounded by
    // one checkpoint interval.  Debug builds are slow; 2 s is still within
    // the acceptance envelope's spirit and catches any unbounded hang.
    assert!(
        elapsed < Duration::from_secs(2),
        "run overshot its 50ms deadline by too much: {elapsed:?}"
    );
}

#[test]
fn deadline_on_reachability_bench_terminates_within_bound() {
    // The §5.1.1 reachability workload on a 128-node random digraph — the
    // acceptance benchmark for `--timeout 50ms`.  A fast machine may finish
    // under the deadline (that is success too); either way the run must
    // terminate promptly and a cancelled run must carry partial stats.
    let program = parse_program("T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).").unwrap();
    let input = Workloads::new(17).digraph_instance(128, 512);
    let deadline = Duration::from_millis(50);
    let engine = Engine::new().with_limits(EvalLimits {
        deadline: Some(deadline),
        ..unlimited()
    });
    let started = Instant::now();
    let result = Executor::new()
        .with_engine(engine)
        .with_threads(4)
        .run_with_stats(&program, &input);
    let elapsed = started.elapsed();

    match result {
        Ok((_, stats)) => assert!(stats.iterations > 0),
        Err(EvalError::Cancelled {
            reason,
            partial_stats,
        }) => {
            assert!(reason.contains("deadline"), "reason: {reason}");
            assert!(partial_stats.rule_firings > 0 || partial_stats.iterations > 0);
        }
        Err(other) => panic!("unexpected error: {other}"),
    }
    assert!(
        elapsed < Duration::from_secs(2),
        "reachability run did not respect its deadline: {elapsed:?}"
    );
}

#[test]
fn countdown_cancellation_works_through_the_executor() {
    // The deterministic countdown hits a governor checkpoint regardless of
    // machine speed, so this pins the full cancellation path — token to
    // checkpoint to `Cancelled` — without any wall-clock dependence.
    for threads in [1usize, 4] {
        let token = CancelToken::new();
        token.cancel_after(5);
        let engine = Engine::new()
            .with_limits(unlimited())
            .with_cancel_token(token);
        let result = Executor::new()
            .with_engine(engine)
            .with_threads(threads)
            .run_with_stats(&diverging_program(), &Instance::new());
        match result {
            Err(EvalError::Cancelled { reason, .. }) => {
                assert_eq!(
                    reason, "test countdown elapsed",
                    "threads {threads}: wrong reason"
                );
            }
            other => panic!("threads {threads}: expected Cancelled, got {other:?}"),
        }
    }
}

#[test]
fn store_byte_budget_surfaces_limit_exceeded() {
    // The diverging program interns an ever-longer path each round; a small
    // byte budget must stop it with the StoreBytes limit, not a deadline.
    let engine = Engine::new().with_limits(EvalLimits {
        max_store_bytes: Some(4 * 1024),
        ..unlimited()
    });
    let result = engine.run(&diverging_program(), &Instance::new());
    match result {
        Err(EvalError::LimitExceeded { what, limit }) => {
            assert_eq!(what, LimitKind::StoreBytes);
            assert_eq!(limit, 4 * 1024);
        }
        other => panic!("expected StoreBytes limit, got {other:?}"),
    }
}
