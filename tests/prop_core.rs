//! Property-based tests for the core data model: paths, values, packing, instances.

use proptest::prelude::*;
use sequence_datalog::core::Schema;
use sequence_datalog::prelude::*;

/// A strategy for atomic values drawn from a small alphabet.
fn atom_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")]
}

/// A strategy for flat paths of length 0..=8.
fn flat_path() -> impl Strategy<Value = Path> {
    prop::collection::vec(atom_name(), 0..=8).prop_map(|names| path_of(&names))
}

/// A strategy for (possibly) packed values: either an atom or a packed flat path.
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        atom_name().prop_map(|n| Value::Atom(atom(n))),
        flat_path().prop_map(Value::packed),
    ]
}

/// A strategy for general paths that may contain packed values, nesting depth <= 2.
fn deep_path() -> impl Strategy<Value = Path> {
    prop::collection::vec(value(), 0..=6).prop_map(Path::from_values)
}

proptest! {
    #[test]
    fn concatenation_is_associative(a in deep_path(), b in deep_path(), c in deep_path()) {
        prop_assert_eq!(a.concat(&b).concat(&c), a.concat(&b.concat(&c)));
    }

    #[test]
    fn concatenation_length_is_additive(a in deep_path(), b in deep_path()) {
        prop_assert_eq!(a.concat(&b).len(), a.len() + b.len());
    }

    #[test]
    fn empty_path_is_the_concatenation_identity(a in deep_path()) {
        prop_assert_eq!(a.concat(&Path::empty()), a.clone());
        prop_assert_eq!(Path::empty().concat(&a), a);
    }

    #[test]
    fn subpath_of_full_range_is_identity(a in deep_path()) {
        prop_assert_eq!(a.subpath(0, a.len()), a.clone());
        prop_assert_eq!(a.subpath(0, 0), Path::empty());
    }

    #[test]
    fn subpaths_concatenate_back(a in deep_path(), cut in 0usize..=6) {
        let cut = cut.min(a.len());
        prop_assert_eq!(a.subpath(0, cut).concat(&a.subpath(cut, a.len())), a);
    }

    #[test]
    fn substring_count_is_quadratic(a in flat_path()) {
        // Distinct substrings are at most n(n+1)/2 + 1 (the empty path), with
        // equality when all positions hold distinct atoms.
        let n = a.len();
        let subs = a.substrings();
        let distinct: std::collections::BTreeSet<Path> = subs.iter().cloned().collect();
        prop_assert!(distinct.len() <= n * (n + 1) / 2 + 1);
        prop_assert!(distinct.contains(&Path::empty()));
        prop_assert!(distinct.contains(&a));
        // Every reported substring really occurs.
        for s in &distinct {
            prop_assert!(a.contains_subpath(s), "{s} is not a substring of {a}");
        }
    }

    #[test]
    fn contains_subpath_agrees_with_windows(a in flat_path(), b in flat_path()) {
        let occurs = (0..=a.len().saturating_sub(b.len()))
            .any(|i| a.len() >= b.len() && a.subpath(i, i + b.len()) == b);
        let occurs = occurs || b.is_empty();
        prop_assert_eq!(a.contains_subpath(&b), occurs);
    }

    #[test]
    fn flatness_matches_value_structure(a in deep_path()) {
        let expected = a.iter().all(|v| matches!(v, Value::Atom(_)));
        prop_assert_eq!(a.is_flat(), expected);
    }

    #[test]
    fn packing_depth_increases_by_one_when_packed(a in deep_path()) {
        let packed = Path::singleton(Value::packed(a));
        prop_assert_eq!(packed.packing_depth(), a.packing_depth() + 1);
        prop_assert!(packed.len() == 1);
        prop_assert_eq!(packed.is_flat(), false);
    }

    #[test]
    fn display_round_trips_length(a in flat_path()) {
        // The rendered form separates values by "·"; the number of separators is
        // len - 1 for nonempty flat paths.
        let shown = a.to_string();
        if a.is_empty() {
            prop_assert_eq!(shown.as_str(), "eps");
        } else {
            prop_assert_eq!(shown.matches('·').count(), a.len() - 1);
        }
    }

    #[test]
    fn repeat_path_has_requested_length(n in 0usize..=64) {
        let p = repeat_path("a", n);
        prop_assert_eq!(p.len(), n);
        prop_assert!(p.is_flat());
        prop_assert!(p.iter().all(|v| *v == Value::Atom(atom("a"))));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn instances_deduplicate_facts(paths in prop::collection::vec(flat_path(), 0..12)) {
        let mut instance = Instance::new();
        instance.declare_relation(rel("R"), 1);
        let mut expected = std::collections::BTreeSet::new();
        for p in &paths {
            instance.insert_fact(Fact::new(rel("R"), vec![*p])).unwrap();
            expected.insert(*p);
        }
        prop_assert_eq!(instance.unary_paths(rel("R")), expected.clone());
        prop_assert_eq!(instance.fact_count(), expected.len());
        // Re-inserting never grows the instance.
        for p in &paths {
            let inserted = instance.insert_fact(Fact::new(rel("R"), vec![*p])).unwrap();
            prop_assert!(!inserted);
        }
        prop_assert_eq!(instance.fact_count(), expected.len());
    }

    #[test]
    fn instance_union_is_commutative_and_idempotent(
        a in prop::collection::vec(flat_path(), 0..8),
        b in prop::collection::vec(flat_path(), 0..8),
    ) {
        let ia = Instance::unary(rel("R"), a);
        let ib = Instance::unary(rel("R"), b);
        let ab = ia.union(&ib).unwrap();
        let ba = ib.union(&ia).unwrap();
        prop_assert_eq!(ab.unary_paths(rel("R")), ba.unary_paths(rel("R")));
        let aa = ia.union(&ia).unwrap();
        prop_assert_eq!(aa.unary_paths(rel("R")), ia.unary_paths(rel("R")));
    }

    #[test]
    fn max_path_len_bounds_every_member(paths in prop::collection::vec(deep_path(), 0..10)) {
        let instance = Instance::unary(rel("R"), paths.clone());
        let max = instance.max_path_len();
        for p in instance.unary_paths(rel("R")) {
            prop_assert!(p.len() <= max);
        }
        if !paths.is_empty() {
            prop_assert!(paths.iter().any(|p| p.len() == max));
        }
    }

    #[test]
    fn flat_instances_contain_only_flat_paths(paths in prop::collection::vec(deep_path(), 0..10)) {
        let instance = Instance::unary(rel("R"), paths);
        let expected = instance.unary_paths(rel("R")).iter().all(Path::is_flat);
        prop_assert_eq!(instance.is_flat(), expected);
    }

    #[test]
    fn two_boundedness_matches_lengths(paths in prop::collection::vec(flat_path(), 0..10)) {
        let instance = Instance::unary(rel("R"), paths);
        let expected = instance
            .unary_paths(rel("R"))
            .iter()
            .all(|p| (1..=2).contains(&p.len()));
        prop_assert_eq!(instance.is_two_bounded(), expected);
    }

    #[test]
    fn project_to_schema_keeps_only_declared_relations(
        a in prop::collection::vec(flat_path(), 0..6),
        b in prop::collection::vec(flat_path(), 0..6),
    ) {
        let mut instance = Instance::unary(rel("R"), a.clone());
        instance.declare_relation(rel("Q"), 1);
        for p in &b {
            instance.insert_fact(Fact::new(rel("Q"), vec![*p])).unwrap();
        }
        let mut schema = Schema::new();
        schema.declare(rel("R"), 1);
        let projected = instance.project_to_schema(&schema);
        prop_assert_eq!(projected.unary_paths(rel("R")), instance.unary_paths(rel("R")));
        prop_assert!(projected.relation(rel("Q")).is_none() || projected.unary_paths(rel("Q")).is_empty());
    }

    #[test]
    fn facts_round_trip_through_from_facts(paths in prop::collection::vec(flat_path(), 0..10)) {
        let original = Instance::unary(rel("R"), paths);
        let rebuilt = Instance::from_facts(original.facts()).unwrap();
        prop_assert_eq!(rebuilt.unary_paths(rel("R")), original.unary_paths(rel("R")));
        prop_assert_eq!(rebuilt.fact_count(), original.fact_count());
    }
}
