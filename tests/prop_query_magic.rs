//! wgen-driven differential property test for demand-driven (magic-set) query
//! evaluation: for random safe, stratified programs and random goal binding
//! patterns, evaluating the magic rewrite seeded with the goal's demand must
//! yield exactly the answers of a full run filtered by the goal — at one and
//! four executor threads, and under the sequential engine.
//!
//! This guards the whole query pipeline: goal adornment, the sideways
//! information passing over rule bodies, guard insertion, magic demand rules,
//! the full-portion closure under negation, seeding, and answer filtering.

use proptest::prelude::*;
use sequence_datalog::core::Tuple;
use sequence_datalog::exec::Executor;
use sequence_datalog::prelude::*;
use sequence_datalog::rewrite::{goal_matches, magic, strip_dead_seeded};
use sequence_datalog::wgen::{ProgramConfig, ProgramGenerator, Workloads};
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn demanded_evaluation_equals_full_run_then_filter(
        seed in 0u64..(1u64 << 32),
        salt in 0u64..(1u64 << 32),
        goal_salt in 0u64..(1u64 << 32),
        allow_equations in any::<bool>(),
        allow_negation in any::<bool>(),
        allow_arity in any::<bool>(),
        allow_recursion in any::<bool>(),
    ) {
        let config = ProgramConfig {
            allow_equations,
            allow_negation,
            allow_arity,
            allow_recursion,
            ..ProgramConfig::default()
        };
        let generator = ProgramGenerator::new(seed);
        let program = generator.random_program(salt, &config);
        let mut input = Workloads::new(seed ^ salt).random_flat_instance(2, 3, 4, 2);
        input.declare_relation(rel("R0"), 1);
        input.declare_relation(rel("R1"), 1);

        // Query the relation of the last rule of the last stratum, with a
        // random binding pattern per column.
        let output = program
            .strata
            .last()
            .and_then(|s| s.rules.last())
            .map(|r| r.head.clone())
            .expect("generated programs have rules");
        let goal = generator.random_goal(goal_salt, output.relation, output.arity());

        let full = Engine::new()
            .run(&program, &input)
            .unwrap_or_else(|e| panic!("full run failed: {e}\n{program}"));
        let expected: BTreeSet<Tuple> = full
            .relation(goal.relation)
            .map(|r| {
                r.iter()
                    .filter(|t| goal_matches(&goal, t))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();

        let mp = magic(&program, &goal)
            .unwrap_or_else(|e| panic!("magic failed for goal {goal}: {e}\n{program}"));
        let engine_out = Engine::new()
            .run_seeded(&mp.program, &input, &mp.seeds)
            .unwrap_or_else(|e| panic!("seeded engine run failed: {e}\n{}", mp.program));
        prop_assert_eq!(
            mp.answers(&engine_out),
            expected.clone(),
            "engine: goal {} on\n{}\nrewritten:\n{}",
            &goal,
            &program,
            &mp.program
        );
        for threads in [1usize, 4] {
            let out = Executor::new()
                .with_threads(threads)
                .run_seeded(&mp.program, &input, &mp.seeds)
                .unwrap_or_else(|e| panic!("seeded executor run failed: {e}\n{}", mp.program));
            prop_assert_eq!(
                mp.answers(&out),
                expected.clone(),
                "threads = {}: goal {} on\n{}\nrewritten:\n{}",
                threads,
                &goal,
                &program,
                &mp.program
            );
        }

        // Seed-aware dead-rule stripping (what `seqdl query` applies before
        // lowering) must preserve the answers too: seeded relations are
        // nonempty at runtime even when every rule producing them is
        // statically false.
        let seeded: BTreeSet<RelName> = mp.seeds.iter().map(|f| f.relation).collect();
        let answer_set: BTreeSet<RelName> = [mp.answer].into_iter().collect();
        let stripped = strip_dead_seeded(&mp.program, &answer_set, &seeded);
        let stripped_out = Engine::new()
            .run_seeded(&stripped.program, &input, &mp.seeds)
            .unwrap_or_else(|e| panic!("stripped seeded run failed: {e}\n{}", stripped.program));
        prop_assert_eq!(
            mp.answers(&stripped_out),
            expected.clone(),
            "strip_dead_seeded changed the answers: goal {} on\n{}\nrewritten:\n{}\nstripped:\n{}",
            &goal,
            &program,
            &mp.program,
            &stripped.program
        );
        for threads in [1usize, 4] {
            let out = Executor::new()
                .with_threads(threads)
                .run_seeded(&stripped.program, &input, &mp.seeds)
                .unwrap_or_else(|e| {
                    panic!("stripped seeded executor run failed: {e}\n{}", stripped.program)
                });
            prop_assert_eq!(
                mp.answers(&out),
                expected.clone(),
                "threads = {}: strip_dead_seeded changed the answers: goal {} on\n{}\nstripped:\n{}",
                threads,
                &goal,
                &program,
                &stripped.program
            );
        }
    }
}
