//! The example-program corpus under `examples/programs/` must stay clean
//! under `seqdl check --deny warnings`: intentional findings are declared
//! with `% expect:` annotations inside the programs themselves.  CI runs the
//! same gate through the binary; this test enforces it in-process so a
//! regression fails `cargo test` before it fails CI.

use seqdl_cli::run_cli;

fn corpus() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/programs");
    let mut programs: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.unwrap().path();
            (path.extension().is_some_and(|e| e == "sdl")).then_some(path)
        })
        .collect();
    programs.sort();
    programs
}

#[test]
fn every_example_program_checks_clean_under_deny_warnings() {
    let programs = corpus();
    assert!(
        programs.len() >= 5,
        "expected a corpus of programs, found {programs:?}"
    );
    for path in &programs {
        let args: Vec<String> = [
            "check",
            "--program",
            path.to_str().unwrap(),
            "--deny",
            "warnings",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        if let Err(e) = run_cli(&args) {
            panic!(
                "{} fails `seqdl check --deny warnings`:\n{e}",
                path.display()
            );
        }
    }
}

#[test]
fn the_showcase_program_fires_its_declared_lints() {
    // The one intentionally defective program must actually demonstrate the
    // lints it advertises (the `% expect:` machinery verifies each fires).
    let showcase = corpus()
        .into_iter()
        .find(|p| p.file_name().is_some_and(|n| n == "lints_showcase.sdl"))
        .expect("lints_showcase.sdl present");
    let args: Vec<String> = ["check", "--program", showcase.to_str().unwrap()]
        .iter()
        .map(ToString::to_string)
        .collect();
    let report = run_cli(&args).expect("showcase checks without --deny");
    for code in [
        "SD-W101", "SD-W102", "SD-W103", "SD-W104", "SD-W105", "SD-W201",
    ] {
        assert!(report.contains(code), "missing {code} in:\n{report}");
    }
}
