//! Acceptance tests for demand-driven query evaluation on the §5.1.1
//! reachability workload: a single-source goal must fire strictly fewer rules
//! than the full fixpoint (measured via `EvalStats`) while producing exactly
//! the full-run-then-filter answers, at 1 and 4 executor threads.

use sequence_datalog::core::Tuple;
use sequence_datalog::exec::Executor;
use sequence_datalog::prelude::*;
use sequence_datalog::rewrite::{goal_matches, magic, parse_goal};
use sequence_datalog::wgen::Workloads;
use std::collections::BTreeSet;

fn reachability_program() -> Program {
    // Section 5.1.1: edges as length-2 paths, T the transitive closure.
    parse_program("T(@x·@y) <- R(@x·@y).\nT(@x·@z) <- T(@x·@y), R(@y·@z).").unwrap()
}

#[test]
fn single_source_query_fires_strictly_fewer_rules_than_the_full_run() {
    let program = reachability_program();
    let goal = parse_goal("T(a·$y)").unwrap();
    let input = Workloads::new(17).digraph_instance(16, 48);

    let engine = Engine::new();
    let (full, full_stats) = engine.run_with_stats(&program, &input).unwrap();
    let expected: BTreeSet<Tuple> = full
        .relation(rel("T"))
        .unwrap()
        .iter()
        .filter(|t| goal_matches(&goal, t))
        .cloned()
        .collect();
    assert!(!expected.is_empty(), "the workload must have answers");

    let mp = magic(&program, &goal).unwrap();
    for threads in [1usize, 4] {
        let (out, stats) = Executor::new()
            .with_threads(threads)
            .run_with_stats_seeded(&mp.program, &input, &mp.seeds)
            .unwrap();
        assert_eq!(
            mp.answers(&out),
            expected,
            "threads = {threads}: query must equal full-run-then-filter"
        );
        assert!(
            stats.rule_firings < full_stats.rule_firings,
            "threads = {threads}: demanded evaluation fired {} rules, \
             the full run {} — demand must be strictly cheaper",
            stats.rule_firings,
            full_stats.rule_firings
        );
    }
}

#[test]
fn point_queries_and_empty_demands_behave() {
    let program = reachability_program();
    let input = Workloads::new(17).digraph_instance(12, 30);
    let engine = Engine::new();
    let full = engine.run(&program, &input).unwrap();

    for goal_text in ["T(a·b)", "T(b·$y)", "T(zzz·$y)", "T($p)"] {
        let goal = parse_goal(goal_text).unwrap();
        let expected: BTreeSet<Tuple> = full
            .relation(rel("T"))
            .unwrap()
            .iter()
            .filter(|t| goal_matches(&goal, t))
            .cloned()
            .collect();
        let mp = magic(&program, &goal).unwrap();
        let out = engine.run_seeded(&mp.program, &input, &mp.seeds).unwrap();
        assert_eq!(mp.answers(&out), expected, "goal {goal_text}");
    }
}
